//! Cluster assembly: the shared DPM, the set of KVS nodes, the ownership
//! table, and the reconfiguration protocol of §3.5.

use crate::config::{KvsConfig, Variant};
use crate::error::KvsError;
use crate::kn::KnNode;
use crate::stats::KvsStats;
use crate::{KvsClient, Result};
use dinomo_dpm::{entry::decode_entry, DpmNode, LogWriter, PackedLoc, RecoveryReport, TreeStats};
use dinomo_partition::{KnId, OwnershipTable};
use dinomo_pmem::PmemError;
use dinomo_simnet::Nic;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// The Dinomo cluster (data plane + the mechanisms the control plane drives).
///
/// `Kvs` is cheap to clone; clones share the same cluster.
#[derive(Debug, Clone)]
pub struct Kvs {
    inner: Arc<KvsInner>,
}

#[derive(Debug)]
pub(crate) struct KvsInner {
    pub(crate) config: KvsConfig,
    pub(crate) dpm: Arc<DpmNode>,
    pub(crate) ownership: Arc<RwLock<OwnershipTable>>,
    pub(crate) kns: RwLock<BTreeMap<KnId, Arc<KnNode>>>,
    /// Serializes the control plane: every reconfiguration entry point
    /// (`add_kn`/`remove_kn`/`fail_kn`/`replicate_key`/`dereplicate_key`)
    /// runs its close → drain → flush → merge → swap → reopen choreography
    /// under this mutex. The individual protocols are safe against the
    /// *data* plane, but two interleaved hand-offs can close each other's
    /// nodes, observe half-swapped tables, or double-collapse a replica
    /// set — until now the driver/policy engine called them sequentially
    /// by construction; with concurrent controllers (and the background
    /// compactor's cell snapshots riding on the DPM cell-registry lock)
    /// the serialization is explicit.
    reconfig_lock: Mutex<()>,
    /// Acquisition wait on `reconfig_lock` (`lock_wait_reconfig_ns`).
    reconfig_wait: dinomo_obs::Histogram,
    /// The cluster-wide metrics registry: shared by the DPM, every KN,
    /// and the clients, snapshotted by benches and the cluster driver.
    pub(crate) metrics: Arc<dinomo_obs::Registry>,
    next_kn_id: AtomicU32,
    reconfigurations: AtomicU64,
    bytes_reshuffled: AtomicU64,
}

impl KvsInner {
    /// Take the control-plane lock, billing the wait to
    /// `lock_wait_reconfig_ns`.
    pub(crate) fn lock_reconfig(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.reconfig_wait.time(|| self.reconfig_lock.lock())
    }
}

impl Kvs {
    /// Build a cluster with `config.initial_kns` KVS nodes.
    pub fn new(config: KvsConfig) -> Result<Self> {
        let metrics = dinomo_obs::Registry::new_shared();
        // The epoch shim's reclamation stats are process-global; bridge
        // them so snapshots (and the cluster driver's per-epoch deltas)
        // see bag flushes next to the native counters.
        metrics.register_external("epoch_bag_flushes", || {
            dinomo_dpm::epoch_stats().bag_flushes
        });
        let dpm = Arc::new(DpmNode::with_metrics(config.dpm, Arc::clone(&metrics))?);
        let ownership = Arc::new(RwLock::new(OwnershipTable::new(
            config.ring_vnodes,
            config.threads_per_kn as u32,
        )));
        let inner = Arc::new(KvsInner {
            config,
            dpm,
            ownership,
            kns: RwLock::new(BTreeMap::new()),
            reconfig_lock: Mutex::new(()),
            reconfig_wait: metrics.lock_wait(dinomo_obs::LockId::Reconfig),
            metrics,
            next_kn_id: AtomicU32::new(0),
            reconfigurations: AtomicU64::new(0),
            bytes_reshuffled: AtomicU64::new(0),
        });
        // The DPM compactor relocates log entries; KN caches hold raw value
        // addresses (shortcuts) into the segments it frees, so every
        // relocation invalidates the key's cached locations cluster-wide
        // before the victim's bytes can be reused. Weak: the observer must
        // not keep the cluster alive from inside the DPM it references.
        let weak: Weak<KvsInner> = Arc::downgrade(&inner);
        inner
            .dpm
            .set_relocation_observer(Box::new(move |key, old_loc| {
                if let Some(inner) = weak.upgrade() {
                    let kns: Vec<Arc<KnNode>> = inner.kns.read().values().cloned().collect();
                    for kn in kns {
                        kn.on_entry_relocated(key, old_loc);
                    }
                }
            }));
        let kvs = Kvs { inner };
        for _ in 0..config.initial_kns.max(1) {
            kvs.add_kn()?;
        }
        Ok(kvs)
    }

    /// The configuration the cluster was built with.
    pub fn config(&self) -> &KvsConfig {
        &self.inner.config
    }

    /// The shared DPM node.
    pub fn dpm(&self) -> &Arc<DpmNode> {
        &self.inner.dpm
    }

    /// The shared ownership table (the routing nodes' view).
    pub fn ownership(&self) -> Arc<RwLock<OwnershipTable>> {
        Arc::clone(&self.inner.ownership)
    }

    /// A new client handle (each client caches routing metadata).
    pub fn client(&self) -> KvsClient {
        KvsClient::new(Arc::clone(&self.inner))
    }

    /// Identifiers of the live KVS nodes.
    pub fn kn_ids(&self) -> Vec<KnId> {
        self.inner.kns.read().keys().copied().collect()
    }

    /// Number of live KVS nodes.
    pub fn num_kns(&self) -> usize {
        self.inner.kns.read().len()
    }

    /// Handle to one KVS node.
    pub fn kn(&self, id: KnId) -> Option<Arc<KnNode>> {
        self.inner.kns.read().get(&id).cloned()
    }

    /// Total number of reconfigurations (membership or replication changes).
    pub fn reconfigurations(&self) -> u64 {
        self.inner.reconfigurations.load(Ordering::Relaxed)
    }

    /// Bytes physically copied by shared-nothing (Dinomo-N) reshuffles.
    pub fn bytes_reshuffled(&self) -> u64 {
        self.inner.bytes_reshuffled.load(Ordering::Relaxed)
    }

    /// The cluster-wide metrics registry (stage histograms, lock-wait
    /// profiles, migrated counters — see `docs/OBSERVABILITY.md`).
    pub fn metrics(&self) -> Arc<dinomo_obs::Registry> {
        Arc::clone(&self.inner.metrics)
    }

    // ----------------------------------------------------- reconfiguration

    /// Add a KVS node and repartition ownership onto it (§3.5 steps 1–7).
    /// Returns the new node's id.
    pub fn add_kn(&self) -> Result<KnId> {
        let _reconfig = self.inner.lock_reconfig();
        let new_id = self.inner.next_kn_id.fetch_add(1, Ordering::Relaxed);
        let old_table = self.inner.ownership.read().clone();
        let mut new_table = old_table.clone();
        new_table.add_kn(new_id);

        // Step 1: the KNs whose ranges move are those that currently own
        // ranges the new node takes over — with consistent hashing that is
        // potentially every existing node.
        let affected: Vec<Arc<KnNode>> = {
            let changes = old_table.global_ring().changes_to(new_table.global_ring());
            let losers: Vec<KnId> = changes
                .iter()
                .filter_map(|c| c.from)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let kns = self.inner.kns.read();
            losers
                .iter()
                .filter_map(|id| kns.get(id).cloned())
                .collect()
        };

        // Step 2: the participating KNs become unavailable. In-flight
        // sub-batches (on shard workers or inline callers) are drained so
        // none can buffer a write behind the flush below; queued ones
        // reject with `Reconfiguring` when a worker picks them up.
        for kn in &affected {
            kn.set_reconfiguring(true);
        }
        for kn in &affected {
            kn.drain_in_flight();
        }
        // Step 3: their pending logs are merged synchronously.
        for kn in &affected {
            kn.flush_pending_writes()?;
            self.inner.dpm.wait_until_merged(kn.id());
        }
        // Shared-nothing variant: physically reshuffle the data that changes
        // owner (this is exactly the cost Dinomo's ownership partitioning
        // avoids).
        if self.inner.config.variant.requires_data_reshuffle() {
            self.reshuffle_data(&old_table, &new_table)?;
        }

        // Simulated fail-stop at the nastiest instant of the hand-off:
        // the moving ranges are closed, drained, flushed and merged, but
        // the new table has not been installed. Abort here — the affected
        // nodes stay closed (`Reconfiguring`), exactly as a crashed
        // controller would leave them, until the crash/recover path
        // reopens the cluster.
        if self.inner.dpm.failpoints().hit("handoff.before-flip") {
            return Err(KvsError::Pmem(PmemError::InjectedFailure));
        }

        // Step 4/5: build the new node, install the new mapping, reopen.
        let node = Arc::new(KnNode::new(
            new_id,
            &self.inner.config,
            Arc::clone(&self.inner.dpm),
            Arc::clone(&self.inner.ownership),
            &self.inner.metrics,
        ));
        self.inner.kns.write().insert(new_id, node);
        *self.inner.ownership.write() = new_table;
        for kn in &affected {
            // The previous owners empty their caches for the moved ranges.
            kn.clear_caches();
            kn.set_reconfiguring(false);
        }
        // Steps 6/7 (asynchronously updating remaining KNs and RNs) are
        // immediate here because all components share the ownership table.
        self.persist_policy_metadata()?;
        self.inner.reconfigurations.fetch_add(1, Ordering::Relaxed);
        Ok(new_id)
    }

    /// Keys replicated under `old` whose replica set `new` could not keep
    /// alive (the cluster shrank below two nodes): the membership change
    /// flips them back to single ownership, so their shared-path state
    /// must be dismantled like an explicit dereplication.
    fn collapsed_replications(old: &OwnershipTable, new: &OwnershipTable) -> Vec<Vec<u8>> {
        old.replicated_keys()
            .filter(|k| !new.is_replicated(k))
            .cloned()
            .collect()
    }

    /// The dereplication half of a membership change that collapses
    /// replica sets: with `survivors` already closed and drained by the
    /// caller, merge their outstanding log segments and dismantle each
    /// collapsed key's indirection cell, so the index is authoritative
    /// when the owned-path protocol takes over. Callers swap the table
    /// and reopen the survivors afterwards.
    fn collapse_replicated_keys(&self, keys: &[Vec<u8>], survivors: &[Arc<KnNode>]) -> Result<()> {
        for kn in survivors {
            kn.flush_pending_writes()?;
            self.inner.dpm.wait_until_merged(kn.id());
        }
        for key in keys {
            for kn in self.inner.kns.read().values() {
                kn.invalidate_key(key);
            }
            self.inner.dpm.remove_indirect(key);
        }
        Ok(())
    }

    /// The shared core of a membership shrink (`remove_kn`'s planned
    /// hand-off and `fail_kn`'s recovery): make what must survive durable
    /// and merged, reshuffle if the variant requires it, explicitly
    /// dereplicate replica sets the shrink could not keep alive (see
    /// `OwnershipTable::remove_kn` — never a silent protocol flip), and
    /// swap in the new table. On error **nothing is swapped**: the cluster
    /// keeps serving under the old table and the caller decides how to
    /// reopen the victim.
    fn shrink_membership(
        &self,
        victim: &Arc<KnNode>,
        planned: bool,
        old_table: &OwnershipTable,
        new_table: OwnershipTable,
    ) -> Result<()> {
        if planned {
            victim.flush_pending_writes()?;
            self.inner.dpm.wait_until_merged(victim.id());
        } else {
            // Fail-stop recovery: the M-node merges whatever the failed
            // node had already flushed.
            self.inner.dpm.merge_pending_for_kn(victim.id());
        }
        if self.inner.config.variant.requires_data_reshuffle() {
            self.reshuffle_data(old_table, &new_table)?;
        }
        let collapsed = Self::collapsed_replications(old_table, &new_table);
        let survivors: Vec<Arc<KnNode>> = if collapsed.is_empty() {
            Vec::new()
        } else {
            let kns = self.inner.kns.read();
            kns.values()
                .filter(|n| n.id() != victim.id())
                .cloned()
                .collect()
        };
        for kn in &survivors {
            kn.set_reconfiguring(true);
        }
        for kn in &survivors {
            kn.drain_in_flight();
        }
        let result = self.collapse_replicated_keys(&collapsed, &survivors);
        if result.is_ok() {
            if planned {
                // The planned hand-off empties the victim's caches once
                // its state is merged (a failed node already lost them).
                victim.clear_caches();
            }
            *self.inner.ownership.write() = new_table;
            self.inner.kns.write().remove(&victim.id());
        }
        for kn in &survivors {
            kn.set_reconfiguring(false);
        }
        result
    }

    /// Remove an (under-utilized) KVS node, handing its ranges to the rest of
    /// the cluster.
    pub fn remove_kn(&self, id: KnId) -> Result<()> {
        let _reconfig = self.inner.lock_reconfig();
        let node = self.kn(id).ok_or(KvsError::NoNodes)?;
        if self.num_kns() <= 1 {
            return Err(KvsError::NoNodes);
        }
        let old_table = self.inner.ownership.read().clone();
        let mut new_table = old_table.clone();
        new_table.remove_kn(id);

        node.set_reconfiguring(true);
        node.drain_in_flight();
        if let Err(e) = self.shrink_membership(&node, true, &old_table, new_table) {
            // The shrink failed with nothing swapped: reopen the victim so
            // the cluster keeps serving under the old table instead of
            // wedging the victim's keys on `Reconfiguring` retries.
            node.set_reconfiguring(false);
            return Err(e);
        }
        // Clean executor shutdown: close the removed node's worker queues,
        // drain what they already accepted (those sub-batches reject with
        // `Reconfiguring` and are retried against the new owners) and join
        // the workers.
        node.shutdown_workers();
        self.persist_policy_metadata()?;
        self.inner.reconfigurations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Simulate a fail-stop KVS-node failure and run the recovery protocol:
    /// merge the failed node's pending logs, repartition ownership among the
    /// alive nodes, and (for shared-nothing variants) reshuffle its data.
    pub fn fail_kn(&self, id: KnId) -> Result<()> {
        let _reconfig = self.inner.lock_reconfig();
        let node = self.kn(id).ok_or(KvsError::NoNodes)?;
        node.fail();
        let old_table = self.inner.ownership.read().clone();
        let mut new_table = old_table.clone();
        new_table.remove_kn(id);

        let result = self.shrink_membership(&node, false, &old_table, new_table);
        // The node is fail-stopped either way: join its workers so even a
        // failed recovery leaks no threads — sub-batches still queued
        // behind the failure reject with `NodeFailed` and their clients
        // retry against the surviving owners.
        node.shutdown_workers();
        result?;
        self.persist_policy_metadata()?;
        self.inner.reconfigurations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Share the ownership of a hot key across `factor` nodes (selective
    /// replication).  Installs the indirection cell in DPM and invalidates
    /// the primary owner's cached copy.
    ///
    /// The key's current owner is made unavailable for the duration of the
    /// flip — the same §3.5 close → drain → flush → merge → swap → reopen
    /// protocol membership changes use. Replication switches the key's
    /// *write protocol* from owned (log → async merge → index) to shared
    /// (flush → indirection-cell CAS); without the quiescent hand-off, a
    /// write acknowledged on the owned path while the cell is being
    /// installed is silently lost: the freshly-installed cell pins the
    /// older entry, readers serve it, and when the racing write's log
    /// record finally merges, the merge engine's shared-put arbitration
    /// sees a cell that never pointed at it and invalidates it — an
    /// acked-write loss that persists until the next write (found by the
    /// `dinomo-check` history checker under replication churn).
    pub fn replicate_key(&self, key: &[u8], factor: usize) -> Result<Vec<KnId>> {
        let _reconfig = self.inner.lock_reconfig();
        if !self.inner.config.variant.supports_selective_replication() {
            return Err(KvsError::Reconfiguring);
        }
        let primary_node = self
            .inner
            .ownership
            .read()
            .primary_owner(key)
            .and_then(|id| self.kn(id));
        if let Some(kn) = &primary_node {
            kn.set_reconfiguring(true);
            kn.drain_in_flight();
        }
        // From here the owner rejects requests (clients retry), so the
        // merged index state the cell snapshots is the key's latest; the
        // table swap below publishes the shared path before the owner
        // reopens. The closure keeps the error paths from leaving the
        // node closed.
        let result = (|| -> Result<Vec<KnId>> {
            if let Some(kn) = &primary_node {
                kn.flush_pending_writes()?;
                self.inner.dpm.wait_until_merged(kn.id());
            }
            if self.inner.dpm.make_indirect(key)?.is_none() {
                // The key is absent (never written, or deleted): there is
                // no entry to hang a cell on, and flipping the table
                // without a cell would leave the key "replicated" with no
                // shared-visibility mechanism — writes would be invisible
                // until their merge and reads would degrade to uncached
                // per-replica fallbacks. Refuse instead; the caller can
                // retry once the key exists.
                return Err(KvsError::KeyNotFound);
            }
            Ok(self.inner.ownership.write().replicate(key, factor))
        })();
        if result.is_ok() {
            for kn in self.inner.kns.read().values() {
                kn.invalidate_key(key);
            }
        }
        if let Some(kn) = &primary_node {
            kn.set_reconfiguring(false);
        }
        let owners = result?;
        self.persist_policy_metadata()?;
        self.inner.reconfigurations.fetch_add(1, Ordering::Relaxed);
        Ok(owners)
    }

    /// Collapse a previously replicated key back to a single owner.
    ///
    /// Mirror of [`Kvs::replicate_key`]'s hand-off, shared → owned: every
    /// current owner is closed and drained, their flushed shared-path
    /// entries (including delete tombstones) are merged so the index is
    /// authoritative, and only then is the indirection cell collapsed and
    /// the table swapped — otherwise a write acknowledged through the
    /// cell could be invisible to owned-path readers until its merge
    /// caught up.
    pub fn dereplicate_key(&self, key: &[u8]) -> Result<()> {
        let _reconfig = self.inner.lock_reconfig();
        let owner_nodes: Vec<Arc<KnNode>> = {
            let table = self.inner.ownership.read();
            let owners = table.owners(key);
            let kns = self.inner.kns.read();
            owners
                .iter()
                .filter_map(|id| kns.get(id).cloned())
                .collect()
        };
        for kn in &owner_nodes {
            kn.set_reconfiguring(true);
        }
        for kn in &owner_nodes {
            kn.drain_in_flight();
        }
        let result = (|| -> Result<()> {
            for kn in &owner_nodes {
                kn.flush_pending_writes()?;
                self.inner.dpm.wait_until_merged(kn.id());
            }
            Ok(())
        })();
        if result.is_ok() {
            for kn in self.inner.kns.read().values() {
                kn.invalidate_key(key);
            }
            self.inner.ownership.write().dereplicate(key);
            self.inner.dpm.remove_indirect(key);
        }
        for kn in &owner_nodes {
            kn.set_reconfiguring(false);
        }
        result?;
        self.persist_policy_metadata()?;
        self.inner.reconfigurations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flush buffered writes on every node (used by drivers at epoch
    /// boundaries and before shutdown).
    pub fn flush_all(&self) -> Result<()> {
        let kns: Vec<Arc<KnNode>> = self.inner.kns.read().values().cloned().collect();
        for kn in kns {
            if !kn.is_failed() {
                kn.flush_pending_writes()?;
            }
        }
        Ok(())
    }

    /// Wait until the DPM has merged every outstanding log segment.
    pub fn quiesce(&self) -> Result<()> {
        self.flush_all()?;
        self.inner.dpm.wait_until_all_merged();
        Ok(())
    }

    /// Simulate a cluster-wide power failure centred on the DPM and run
    /// the full recovery sequence, in-process:
    ///
    /// 1. close every KVS node and drain its in-flight requests (their
    ///    outcomes were decided before the crash instant; requests that
    ///    arrive after the close reject and their clients see failures —
    ///    the checker records those as may-have-applied),
    /// 2. discard each node's volatile state, including
    ///    buffered-but-unflushed log writes
    ///    ([`KnNode::discard_volatile_state`]),
    /// 3. quiesce the merge workers, then drop the DPM pool's
    ///    written-but-unpersisted lines and the DRAM ordered index
    ///    ([`DpmNode::simulate_crash`]),
    /// 4. replay the logs ([`DpmNode::recover`]) and rebuild the ordered
    ///    index from the recovered hash index
    ///    ([`DpmNode::rebuild_ordered`]),
    /// 5. run the quiescent `check_tree`/`check_ordered` invariant walk —
    ///    a violation surfaces as [`KvsError::RecoveryCheckFailed`] —
    ///    and reopen every node.
    ///
    /// The nodes' identities and the ownership table survive (a real
    /// restart would rebuild them from the persisted policy metadata —
    /// see [`Kvs::recover_policy_metadata`]); what this exercises is the
    /// durability story: every acknowledged write must still be served
    /// afterwards.
    pub fn crash_dpm_and_recover(&self) -> Result<DpmCrashReport> {
        let _reconfig = self.inner.lock_reconfig();
        let kns: Vec<Arc<KnNode>> = self.inner.kns.read().values().cloned().collect();
        for kn in &kns {
            kn.set_reconfiguring(true);
        }
        for kn in &kns {
            kn.drain_in_flight();
        }
        let mut buffered_discarded = 0;
        for kn in &kns {
            buffered_discarded += kn.discard_volatile_state();
        }
        // No merge worker may be mid-entry when the pool lines drop: a
        // half-observed entry would be neither replayed nor skipped
        // cleanly. Everything flushed pre-crash is being merged anyway;
        // waiting just moves that work before the crash instant.
        self.inner.dpm.wait_until_all_merged();
        // Exclude collector passes across the crash, the log replay and
        // the invariant walk: a compaction pass swings the hash index
        // before the ordered index, and a check walking that window
        // reports a phantom mismatch.
        let gc_pause = self.inner.dpm.pause_collectors();
        self.inner.dpm.simulate_crash();
        let recovery = self.inner.dpm.recover();
        let ordered_rebuilt = self.inner.dpm.rebuild_ordered();
        let check = self.inner.dpm.check_ordered();
        drop(gc_pause);
        for kn in &kns {
            kn.set_reconfiguring(false);
        }
        let tree = check.map_err(KvsError::RecoveryCheckFailed)?;
        Ok(DpmCrashReport {
            recovery,
            ordered_rebuilt,
            buffered_discarded,
            tree,
        })
    }

    /// Persist the ownership/replication metadata to DPM so failed routing
    /// nodes or KNs can rebuild their soft state (§3.5 "Fault tolerance").
    pub fn persist_policy_metadata(&self) -> Result<()> {
        let table = self.inner.ownership.read();
        let blob = serde_json::to_vec(&*table).unwrap_or_default();
        self.inner.dpm.put_metadata("ownership-table", &blob)?;
        Ok(())
    }

    /// Recover the ownership/replication metadata previously persisted with
    /// [`Kvs::persist_policy_metadata`].
    pub fn recover_policy_metadata(&self) -> Option<OwnershipTable> {
        let blob = self.inner.dpm.get_metadata("ownership-table")?;
        serde_json::from_slice(&blob).ok()
    }

    /// Cluster-wide statistics.
    pub fn stats(&self) -> KvsStats {
        KvsStats {
            kns: self.inner.kns.read().values().map(|k| k.stats()).collect(),
            dpm: self.inner.dpm.stats(),
            ownership_version: self.inner.ownership.read().version(),
        }
    }

    /// Shared-nothing data reorganization: every key whose owner changes is
    /// physically re-written through the new owner's log.  This is the
    /// expensive step that Dinomo's ownership partitioning eliminates.
    fn reshuffle_data(&self, old: &OwnershipTable, new: &OwnershipTable) -> Result<()> {
        debug_assert_eq!(self.inner.config.variant, Variant::DinomoN);
        // Collect the moved keys first (the index cannot be mutated while we
        // iterate it).
        let mut moved: Vec<(Vec<u8>, Vec<u8>, KnId)> = Vec::new();
        let pool = self.inner.dpm.pool();
        self.inner.dpm.index().for_each(|_tag, raw| {
            let loc = PackedLoc::from_raw(raw);
            if loc.is_indirect() {
                return;
            }
            if let Some(entry) = decode_entry(pool, loc.addr(), loc.len()) {
                let old_owner = old.primary_owner(&entry.key);
                let new_owner = new.primary_owner(&entry.key);
                if let (Some(o), Some(n)) = (old_owner, new_owner) {
                    if o != n {
                        moved.push((entry.key.clone(), entry.read_value(pool), n));
                    }
                }
            }
        });
        if moved.is_empty() {
            return Ok(());
        }
        // Re-log every moved pair through a writer owned by its new owner.
        let nic = Nic::new(self.inner.config.fabric);
        let mut writers: BTreeMap<KnId, LogWriter> = BTreeMap::new();
        let mut bytes = 0u64;
        for (key, value, new_owner) in moved {
            bytes += (key.len() + value.len()) as u64;
            let w = writers.entry(new_owner).or_insert_with(|| {
                LogWriter::new(Arc::clone(&self.inner.dpm), new_owner, nic.clone())
            });
            w.append_put(&key, &value);
            if w.should_flush() {
                w.flush()?;
            }
        }
        for (_, mut w) in writers {
            w.flush()?;
            w.seal_current();
        }
        self.inner.dpm.wait_until_all_merged();
        self.inner
            .bytes_reshuffled
            .fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }
}

/// What a simulated power failure + recovery did (see
/// [`Kvs::crash_dpm_and_recover`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpmCrashReport {
    /// The log-replay outcome: sealed entries re-merged, torn entries
    /// discarded, index size after.
    pub recovery: RecoveryReport,
    /// Keys re-inserted into the rebuilt ordered index.
    pub ordered_rebuilt: u64,
    /// Buffered-but-unflushed (never-acknowledged) log entries the
    /// crashed nodes' DRAM took with it.
    pub buffered_discarded: usize,
    /// Statistics of the post-recovery invariant walk.
    pub tree: TreeStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, Reply};
    use dinomo_workload::key_for;

    fn cluster(variant: Variant) -> Kvs {
        Kvs::new(KvsConfig::small_for_tests().with_variant(variant)).unwrap()
    }

    #[test]
    fn insert_is_an_upsert() {
        // §3's `insert` is the write primitive: writing an existing key
        // overwrites it and succeeds (documented on `KvsClient::insert`).
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        client.insert(b"k", b"v1").unwrap();
        client.insert(b"k", b"v2").unwrap();
        assert_eq!(client.lookup(b"k").unwrap(), Some(b"v2".to_vec()));
        // ... and `update` of a missing key writes it (same upsert path).
        client.update(b"fresh", b"v").unwrap();
        assert_eq!(client.lookup(b"fresh").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn execute_returns_positional_replies_for_mixed_batches() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        let replies = client.execute(vec![
            Op::insert("a", "1"),
            Op::insert("b", "2"),
            Op::lookup("a"),
            Op::update("a", "1b"),
            Op::lookup("a"),
            Op::delete("b"),
            Op::lookup("b"),
            Op::lookup("never-written"),
        ]);
        assert_eq!(replies.len(), 8);
        assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
        assert_eq!(replies[2].value(), Some(&b"1"[..]));
        assert_eq!(replies[4].value(), Some(&b"1b"[..]));
        assert_eq!(replies[6], Reply::Value(None));
        assert_eq!(replies[7], Reply::Value(None));
        // Ops on the same key applied in batch order.
        assert_eq!(client.lookup(b"a").unwrap(), Some(b"1b".to_vec()));
        assert_eq!(client.lookup(b"b").unwrap(), None);
    }

    #[test]
    fn batched_writes_are_visible_to_per_key_reads_and_vice_versa() {
        for variant in [Variant::Dinomo, Variant::DinomoS, Variant::DinomoN] {
            let kvs = cluster(variant);
            let client = kvs.client();
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..300u64)
                .map(|i| (key_for(i, 8), format!("v{i}").into_bytes()))
                .collect();
            let replies = client.multi_put(pairs.clone());
            assert!(replies.iter().all(Reply::is_ok));
            kvs.quiesce().unwrap();
            // Per-key reads see the batched writes.
            for (k, v) in &pairs {
                assert_eq!(
                    client.lookup(k).unwrap().as_ref(),
                    Some(v),
                    "{}",
                    variant.name()
                );
            }
            // Batched reads see them too, in key order.
            let replies = client.multi_get(pairs.iter().map(|(k, _)| k.clone()));
            for ((_, v), reply) in pairs.iter().zip(&replies) {
                assert_eq!(reply.value(), Some(v.as_slice()));
            }
            // Both KNs served part of the batch (owner grouping routed
            // sub-batches to each owner, not everything to one node).
            let stats = kvs.stats();
            for kn in &stats.kns {
                assert!(
                    kn.ops > 50,
                    "{} kn {} served {} ops",
                    variant.name(),
                    kn.id,
                    kn.ops
                );
            }
        }
    }

    #[test]
    fn execute_handles_replicated_keys_in_batches() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        client.insert(b"hot", b"v0").unwrap();
        kvs.replicate_key(b"hot", 2).unwrap();
        let replies = client.execute(vec![
            Op::lookup("hot"),
            Op::update("hot", "v1"),
            Op::lookup("hot"),
            Op::insert("cold", "c"),
            Op::lookup("cold"),
        ]);
        assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
        assert_eq!(replies[0].value(), Some(&b"v0"[..]));
        assert_eq!(replies[2].value(), Some(&b"v1"[..]));
        assert_eq!(replies[4].value(), Some(&b"c"[..]));
    }

    #[test]
    fn replicated_key_batches_preserve_write_then_delete_order() {
        // A shared-path write and an owned-path delete of the same
        // replicated key in one batch must apply in batch order: the delete
        // wins, exactly as with sequential per-key calls.
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        client.insert(b"hot", b"v0").unwrap();
        kvs.replicate_key(b"hot", 2).unwrap();
        let replies = client.execute(vec![Op::update("hot", "v1"), Op::delete("hot")]);
        assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
        kvs.quiesce().unwrap();
        assert_eq!(
            client.lookup(b"hot").unwrap(),
            None,
            "delete must win over the earlier write"
        );
        // And the reverse order keeps the write.
        let replies = client.execute(vec![Op::insert("hot", "v2"), Op::lookup("hot")]);
        assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
        assert_eq!(replies[1].value(), Some(&b"v2"[..]));
    }

    #[test]
    fn replicated_key_delete_is_immediately_visible() {
        // An acknowledged delete of a replicated key must be observed by
        // shared-path reads on every replica right away — before its
        // tombstone is flushed or merged (the delete empties the
        // indirection cell) — and a subsequent write must be visible again.
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        client.insert(b"hot", b"v0").unwrap();
        kvs.replicate_key(b"hot", 2).unwrap();
        client.refresh_routing();
        client.delete(b"hot").unwrap();
        // No quiesce: the lookups round-robin across both replicas.
        for i in 0..4 {
            assert_eq!(client.lookup(b"hot").unwrap(), None, "lookup {i}");
        }
        client.insert(b"hot", b"v1").unwrap();
        for i in 0..4 {
            assert_eq!(
                client.lookup(b"hot").unwrap(),
                Some(b"v1".to_vec()),
                "lookup {i} after re-insert"
            );
        }
        // And the merge of the buffered tombstone (older than the
        // re-insert) must not take the newer value down with it.
        kvs.quiesce().unwrap();
        assert_eq!(client.lookup(b"hot").unwrap(), Some(b"v1".to_vec()));
    }

    #[test]
    fn replicated_key_order_holds_with_unrelated_group_ahead() {
        // Regression: an unrelated op earlier in the batch pre-creates the
        // owner group of one of the hot key's replicas. If a batch's ops on
        // one key were round-robined to different replicas, a later op could
        // join that earlier-created group and dispatch before an earlier op
        // on the same key — a lookup observing the pre-update value, or a
        // delete overtaken by the update it should win over. All ops on one
        // key must share one group, whatever the round-robin phase; the
        // sweep over cold keys (spanning both owners) and round-robin
        // phases covers every group-layout combination.
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        for i in 0..8u64 {
            for phase in 0..2u64 {
                client.insert(b"hot", b"v0").unwrap();
                kvs.quiesce().unwrap();
                // Re-install replication each round (the delete below tears
                // the indirection cell down) and refresh the client: with a
                // stale cached table the client routes "hot" to its primary
                // owner and the replica round-robin never engages.
                kvs.replicate_key(b"hot", 2).unwrap();
                client.refresh_routing();
                if phase == 1 {
                    // An odd number of extra picks shifts the round-robin
                    // phase the batches below start from.
                    client.lookup(b"hot").unwrap();
                }

                // Write-then-read: the in-batch lookup follows the update
                // in batch order and must observe its value.
                let v = format!("v{i}-{phase}");
                let replies = client.execute(vec![
                    Op::insert(key_for(i, 8), "c"),
                    Op::update("hot", v.as_bytes()),
                    Op::lookup("hot"),
                ]);
                assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
                assert_eq!(
                    replies[2].value(),
                    Some(v.as_bytes()),
                    "cold key {i} phase {phase}: in-batch lookup must see \
                     the earlier same-batch update"
                );

                // Write-then-delete: the delete is last and must win.
                let replies = client.execute(vec![
                    Op::insert(key_for(i, 8), "c2"),
                    Op::update("hot", "resurrect?"),
                    Op::delete("hot"),
                ]);
                assert!(replies.iter().all(Reply::is_ok), "{replies:?}");
                kvs.quiesce().unwrap();
                assert_eq!(
                    client.lookup(b"hot").unwrap(),
                    None,
                    "cold key {i} phase {phase}: delete must win over the \
                     earlier same-batch update"
                );
            }
        }
    }

    #[test]
    fn batched_writes_flush_once_per_group_but_remain_durable() {
        // With write_batch_ops = 1 every per-op write flushes individually;
        // a batch flushes once per shard group. Either way, everything the
        // client was acked for must be readable after a quiesce.
        let kvs = Kvs::new(KvsConfig {
            write_batch_ops: 1,
            ..KvsConfig::small_for_tests()
        })
        .unwrap();
        let client = kvs.client();
        let ops: Vec<Op> = (0..64u64)
            .map(|i| Op::insert(key_for(i, 8), [i as u8; 32]))
            .collect();
        assert!(client.execute(ops).iter().all(Reply::is_ok));
        kvs.quiesce().unwrap();
        for i in 0..64u64 {
            assert_eq!(
                client.lookup(&key_for(i, 8)).unwrap(),
                Some(vec![i as u8; 32])
            );
        }
    }

    #[test]
    fn batches_fan_out_through_the_shard_workers() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        let ops: Vec<Op> = (0..64u64)
            .map(|i| Op::insert(key_for(i, 8), format!("v{i}")))
            .collect();
        assert!(client.execute(ops).iter().all(Reply::is_ok));
        let replies = client.multi_get((0..64u64).map(|i| key_for(i, 8)));
        assert!(replies.iter().all(Reply::is_ok));
        let stats = kvs.stats();
        let sub_batches: u64 = stats.kns.iter().map(|k| k.sub_batches).sum();
        // 2 KNs × 2 shards and 64 strided keys: both rounds must have
        // enqueued several sub-batches, and the queues must be drained
        // once execute returned.
        assert!(sub_batches >= 4, "batches did not fan out: {sub_batches}");
        for id in kvs.kn_ids() {
            assert_eq!(kvs.kn(id).unwrap().queued_sub_batches(), 0);
        }
    }

    #[test]
    fn executor_disabled_runs_batches_inline() {
        let kvs = Kvs::builder()
            .small_for_tests()
            .executor_queue_depth(0)
            .build()
            .unwrap();
        let client = kvs.client();
        let ops: Vec<Op> = (0..64u64)
            .map(|i| Op::insert(key_for(i, 8), format!("v{i}")))
            .collect();
        assert!(client.execute(ops).iter().all(Reply::is_ok));
        let replies = client.multi_get((0..64u64).map(|i| key_for(i, 8)));
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(reply.value(), Some(format!("v{i}").as_bytes()));
        }
        let stats = kvs.stats();
        assert!(stats.kns.iter().all(|k| k.sub_batches == 0));
        assert!(stats.kns.iter().all(|k| k.busy_rejections == 0));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let kvs = cluster(Variant::Dinomo);
        assert!(kvs.client().execute(Vec::new()).is_empty());
    }

    #[test]
    fn basic_crud_through_client() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        client.insert(b"alpha", b"1").unwrap();
        client.insert(b"beta", b"2").unwrap();
        assert_eq!(client.lookup(b"alpha").unwrap(), Some(b"1".to_vec()));
        assert_eq!(client.lookup(b"beta").unwrap(), Some(b"2".to_vec()));
        assert_eq!(client.lookup(b"gamma").unwrap(), None);
        client.update(b"alpha", b"1b").unwrap();
        assert_eq!(client.lookup(b"alpha").unwrap(), Some(b"1b".to_vec()));
        client.delete(b"alpha").unwrap();
        assert_eq!(client.lookup(b"alpha").unwrap(), None);
        assert_eq!(client.lookup(b"beta").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn many_keys_across_kns_and_shards() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        for i in 0..500u64 {
            client
                .insert(&key_for(i, 8), format!("value-{i}").as_bytes())
                .unwrap();
        }
        kvs.quiesce().unwrap();
        for i in 0..500u64 {
            assert_eq!(
                client.lookup(&key_for(i, 8)).unwrap(),
                Some(format!("value-{i}").into_bytes()),
                "key {i}"
            );
        }
        let stats = kvs.stats();
        assert_eq!(stats.kns.len(), 2);
        // Both KNs served a reasonable share of the requests.
        for kn in &stats.kns {
            assert!(kn.ops > 100, "kn {} only served {} ops", kn.id, kn.ops);
        }
    }

    #[test]
    fn all_variants_serve_reads_and_writes() {
        for variant in [Variant::Dinomo, Variant::DinomoS, Variant::DinomoN] {
            let kvs = cluster(variant);
            let client = kvs.client();
            for i in 0..100u64 {
                client.insert(&key_for(i, 8), &[i as u8; 64]).unwrap();
            }
            for i in 0..100u64 {
                assert_eq!(
                    client.lookup(&key_for(i, 8)).unwrap(),
                    Some(vec![i as u8; 64]),
                    "{} key {i}",
                    variant.name()
                );
            }
        }
    }

    #[test]
    fn add_kn_preserves_data_and_moves_ownership() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        for i in 0..300u64 {
            client.insert(&key_for(i, 8), &[1u8; 32]).unwrap();
        }
        let before_version = kvs.ownership().read().version();
        let new_id = kvs.add_kn().unwrap();
        assert_eq!(kvs.num_kns(), 3);
        assert!(kvs.ownership().read().version() > before_version);
        assert!(kvs.kn_ids().contains(&new_id));
        for i in 0..300u64 {
            assert_eq!(
                client.lookup(&key_for(i, 8)).unwrap(),
                Some(vec![1u8; 32]),
                "key {i}"
            );
        }
        // The new node ends up owning some keys and serving requests.
        let new_kn_ops = kvs.kn(new_id).unwrap().stats().ops;
        assert!(new_kn_ops > 0, "new KN never served a request");
        // Dinomo never physically copies data on reconfiguration.
        assert_eq!(kvs.bytes_reshuffled(), 0);
    }

    #[test]
    fn mid_handoff_crash_closes_ranges_and_recovery_reopens() {
        // Abort a §3.5 hand-off after close/drain/flush/merge but before
        // the table flip (`handoff.before-flip`): no half-admitted node,
        // no table change, and the moving ranges left closed — exactly
        // what a crashed controller leaves. `crash_dpm_and_recover` must
        // then reopen the cluster with every acked write intact, and the
        // next hand-off must run cleanly.
        let mut config = KvsConfig {
            write_batch_ops: 1,
            ..KvsConfig::small_for_tests()
        };
        config.dpm.pool.track_persistence = true;
        let kvs = Kvs::new(config).unwrap();
        let client = kvs.client();
        for i in 0..200u64 {
            client.insert(&key_for(i, 8), &[4u8; 32]).unwrap();
        }

        let kns_before = kvs.num_kns();
        let version_before = kvs.ownership().read().version();
        kvs.dpm().failpoints().arm("handoff.before-flip", 1);
        let err = kvs.add_kn().unwrap_err();
        kvs.dpm().failpoints().disarm("handoff.before-flip");
        assert!(matches!(err, KvsError::Pmem(_)), "{err:?}");
        assert_eq!(kvs.num_kns(), kns_before, "no half-admitted node");
        assert_eq!(
            kvs.ownership().read().version(),
            version_before,
            "the table must not have flipped"
        );
        let closed = kvs.kn_ids().iter().any(|&id| {
            matches!(
                kvs.kn(id).unwrap().get(&key_for(0, 8)),
                Err(KvsError::Reconfiguring)
            )
        });
        assert!(closed, "the moving ranges must be left closed");

        let report = kvs.crash_dpm_and_recover().unwrap();
        assert!(report.ordered_rebuilt >= 200, "{report:?}");
        for i in 0..200u64 {
            assert_eq!(
                client.lookup(&key_for(i, 8)).unwrap(),
                Some(vec![4u8; 32]),
                "key {i} lost across mid-hand-off crash"
            );
        }

        let new_id = kvs.add_kn().unwrap();
        assert!(kvs.kn_ids().contains(&new_id));
        for i in 0..200u64 {
            assert_eq!(client.lookup(&key_for(i, 8)).unwrap(), Some(vec![4u8; 32]));
        }
    }

    #[test]
    fn dinomo_n_reshuffles_data_on_membership_change() {
        let kvs = cluster(Variant::DinomoN);
        let client = kvs.client();
        for i in 0..200u64 {
            client.insert(&key_for(i, 8), &[7u8; 64]).unwrap();
        }
        kvs.quiesce().unwrap();
        kvs.add_kn().unwrap();
        assert!(kvs.bytes_reshuffled() > 0, "shared-nothing must copy data");
        for i in 0..200u64 {
            assert_eq!(client.lookup(&key_for(i, 8)).unwrap(), Some(vec![7u8; 64]));
        }
    }

    #[test]
    fn remove_kn_keeps_data_available() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        for i in 0..200u64 {
            client.insert(&key_for(i, 8), &[9u8; 16]).unwrap();
        }
        let victim = kvs.kn_ids()[0];
        kvs.remove_kn(victim).unwrap();
        assert_eq!(kvs.num_kns(), 1);
        for i in 0..200u64 {
            assert_eq!(
                client.lookup(&key_for(i, 8)).unwrap(),
                Some(vec![9u8; 16]),
                "key {i}"
            );
        }
        // Removing the last node is refused.
        let last = kvs.kn_ids()[0];
        assert!(matches!(kvs.remove_kn(last), Err(KvsError::NoNodes)));
    }

    #[test]
    fn failed_kn_data_remains_readable_after_recovery() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        for i in 0..200u64 {
            client.insert(&key_for(i, 8), &[3u8; 32]).unwrap();
        }
        // Make sure everything is durable in the log before the crash (the
        // client-visible guarantee covers flushed writes).
        kvs.flush_all().unwrap();
        let victim = kvs.kn_ids()[0];
        kvs.fail_kn(victim).unwrap();
        assert_eq!(kvs.num_kns(), 1);
        for i in 0..200u64 {
            assert_eq!(
                client.lookup(&key_for(i, 8)).unwrap(),
                Some(vec![3u8; 32]),
                "key {i}"
            );
        }
        // The failed node rejects requests.
        assert!(kvs.kn(victim).is_none());
    }

    #[test]
    fn selective_replication_shares_ownership() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        client.insert(b"hotkey", b"v0").unwrap();
        let owners = kvs.replicate_key(b"hotkey", 2).unwrap();
        assert_eq!(owners.len(), 2);
        assert!(kvs.ownership().read().is_replicated(b"hotkey"));
        // Reads and writes still linearize through the indirection cell.
        assert_eq!(client.lookup(b"hotkey").unwrap(), Some(b"v0".to_vec()));
        client.update(b"hotkey", b"v1").unwrap();
        assert_eq!(client.lookup(b"hotkey").unwrap(), Some(b"v1".to_vec()));
        // Every owner can serve the key directly.
        for owner in owners {
            let kn = kvs.kn(owner).unwrap();
            assert_eq!(kn.get(b"hotkey").unwrap(), Some(b"v1".to_vec()));
        }
        kvs.dereplicate_key(b"hotkey").unwrap();
        assert!(!kvs.ownership().read().is_replicated(b"hotkey"));
        assert_eq!(client.lookup(b"hotkey").unwrap(), Some(b"v1".to_vec()));
        client.update(b"hotkey", b"v2").unwrap();
        assert_eq!(client.lookup(b"hotkey").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn membership_shrink_keeps_replicated_keys_consistent() {
        // Regression for the silent replication collapse: with a
        // replicated key, removing nodes until only one remains used to
        // drop the key from the replica table while its indirection cell
        // stayed installed — later owned-path writes were acked, then
        // discarded by the merge engine as stale shared puts, and reads
        // served the cell's stale/tombstoned state. The shrink must
        // either keep the set filled (≥2 nodes) or explicitly
        // dereplicate (1 node), and writes must stay readable
        // throughout.
        let kvs = Kvs::new(KvsConfig {
            initial_kns: 3,
            write_batch_ops: 1,
            ..KvsConfig::small_for_tests()
        })
        .unwrap();
        let client = kvs.client();
        client.insert(b"hot", b"v0").unwrap();
        kvs.replicate_key(b"hot", 3).unwrap();

        // Shrink 3 → 2: the replica set refills/trims but stays ≥ 2.
        let victim = kvs.kn_ids()[0];
        kvs.remove_kn(victim).unwrap();
        assert!(kvs.ownership().read().is_replicated(b"hot"));
        client.update(b"hot", b"v1").unwrap();
        assert_eq!(client.lookup(b"hot").unwrap(), Some(b"v1".to_vec()));

        // Shrink 2 → 1: collapse is explicit — the key dereplicates and
        // the owned path serves its latest value.
        let victim = kvs.kn_ids()[0];
        kvs.remove_kn(victim).unwrap();
        assert!(!kvs.ownership().read().is_replicated(b"hot"));
        assert_eq!(client.lookup(b"hot").unwrap(), Some(b"v1".to_vec()));
        // Post-collapse writes go the owned path and must survive a full
        // merge cycle (the old bug discarded them at merge time).
        client.update(b"hot", b"v2").unwrap();
        kvs.quiesce().unwrap();
        assert_eq!(client.lookup(b"hot").unwrap(), Some(b"v2".to_vec()));

        // Same collapse with the key's final state *deleted*: the
        // tombstoned cell must dismantle to a clean miss, and a
        // re-insert must win over the merged tombstone.
        let kvs = Kvs::new(KvsConfig {
            initial_kns: 2,
            write_batch_ops: 1,
            ..KvsConfig::small_for_tests()
        })
        .unwrap();
        let client = kvs.client();
        client.insert(b"doomed", b"v0").unwrap();
        kvs.replicate_key(b"doomed", 2).unwrap();
        client.refresh_routing();
        client.delete(b"doomed").unwrap();
        let victim = kvs.kn_ids()[0];
        kvs.remove_kn(victim).unwrap();
        assert!(!kvs.ownership().read().is_replicated(b"doomed"));
        assert_eq!(client.lookup(b"doomed").unwrap(), None);
        client.insert(b"doomed", b"v1").unwrap();
        kvs.quiesce().unwrap();
        assert_eq!(client.lookup(b"doomed").unwrap(), Some(b"v1".to_vec()));
    }

    #[test]
    fn replicating_an_absent_key_is_refused() {
        // A key with no index entry has nothing to hang an indirection
        // cell on; flipping the table anyway would leave the key
        // "replicated" with no shared-visibility mechanism.
        let kvs = cluster(Variant::Dinomo);
        assert!(matches!(
            kvs.replicate_key(b"never-written", 2),
            Err(KvsError::KeyNotFound)
        ));
        let client = kvs.client();
        client.insert(b"was-here", b"v").unwrap();
        client.delete(b"was-here").unwrap();
        kvs.quiesce().unwrap();
        assert!(matches!(
            kvs.replicate_key(b"was-here", 2),
            Err(KvsError::KeyNotFound)
        ));
        assert!(!kvs.ownership().read().is_replicated(b"was-here"));
    }

    #[test]
    fn dinomo_n_rejects_selective_replication() {
        let kvs = cluster(Variant::DinomoN);
        let client = kvs.client();
        client.insert(b"hot", b"v").unwrap();
        assert!(kvs.replicate_key(b"hot", 2).is_err());
    }

    #[test]
    fn policy_metadata_round_trips_through_dpm() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        client.insert(b"hot", b"v").unwrap();
        kvs.replicate_key(b"hot", 2).unwrap();
        let recovered = kvs
            .recover_policy_metadata()
            .expect("metadata must be persisted");
        assert_eq!(recovered.version(), kvs.ownership().read().version());
        assert!(recovered.is_replicated(b"hot"));
    }

    #[test]
    fn stats_reflect_activity() {
        let kvs = cluster(Variant::Dinomo);
        let client = kvs.client();
        for i in 0..50u64 {
            client.insert(&key_for(i, 8), &[0u8; 128]).unwrap();
        }
        for _ in 0..3 {
            for i in 0..50u64 {
                client.lookup(&key_for(i, 8)).unwrap();
            }
        }
        let stats = kvs.stats();
        assert_eq!(stats.total_ops(), 200);
        assert!(
            stats.cache_hit_ratio() > 0.5,
            "hit ratio {}",
            stats.cache_hit_ratio()
        );
        assert!(stats.rts_per_op() < 2.0);
        assert!(stats.dpm.entries_merged > 0 || stats.dpm.segments_allocated > 0);
    }
}
