//! KVS configuration.

use dinomo_cache::CacheKind;
use dinomo_dpm::DpmConfig;
use dinomo_simnet::FabricConfig;

/// Which of the paper's systems to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Full Dinomo: ownership partitioning, DAC, selective replication.
    Dinomo,
    /// Dinomo with a shortcut-only cache (the paper's Dinomo-S).
    DinomoS,
    /// Shared-nothing Dinomo (the paper's Dinomo-N, standing in for
    /// AsymNVM): data/metadata are partitioned per KN, so reconfiguration
    /// physically copies data and selective replication is unavailable.
    DinomoN,
}

impl Variant {
    /// Short name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Dinomo => "dinomo",
            Variant::DinomoS => "dinomo-s",
            Variant::DinomoN => "dinomo-n",
        }
    }

    /// The cache policy this variant uses unless overridden.
    pub fn default_cache(&self) -> CacheKind {
        match self {
            Variant::Dinomo | Variant::DinomoN => CacheKind::Dac,
            Variant::DinomoS => CacheKind::ShortcutOnly,
        }
    }

    /// `true` if this variant supports selective replication of hot keys.
    pub fn supports_selective_replication(&self) -> bool {
        matches!(self, Variant::Dinomo | Variant::DinomoS)
    }

    /// `true` if membership changes require physically copying data
    /// (shared-nothing architectures).
    pub fn requires_data_reshuffle(&self) -> bool {
        matches!(self, Variant::DinomoN)
    }
}

/// Configuration of a [`crate::Kvs`] cluster.
#[derive(Debug, Clone, Copy)]
pub struct KvsConfig {
    /// Which system to build.
    pub variant: Variant,
    /// Number of KVS nodes at start-up.
    pub initial_kns: usize,
    /// Worker threads (shards) per KVS node.
    pub threads_per_kn: usize,
    /// DRAM cache budget per KVS node, in bytes (the paper uses 1 GB,
    /// ≈1 % of the DPM pool).
    pub cache_bytes_per_kn: usize,
    /// Cache policy; `None` uses the variant's default.
    pub cache_kind: Option<CacheKind>,
    /// Number of writes a KN thread batches into one one-sided log write.
    pub write_batch_ops: usize,
    /// DPM configuration.
    pub dpm: DpmConfig,
    /// Simulated fabric configuration.
    pub fabric: FabricConfig,
    /// Virtual nodes per KN on the consistent-hashing ring.
    pub ring_vnodes: u32,
    /// Capacity of each shard worker's bounded sub-batch queue.
    ///
    /// When positive, every KVS node runs one worker thread per shard
    /// (`threads_per_kn`) and `KvsClient::execute` fans a batch's owner
    /// group out across them; a full queue surfaces
    /// [`crate::KvsError::Busy`] to the client's retry loop. `0` disables
    /// the executor: batches run inline on the calling thread, shard by
    /// shard (the pre-executor behaviour, and the baseline of the
    /// `kn_scaling` bench).
    pub executor_queue_depth: usize,
    /// Minimum operations a shard sub-batch must contain to be enqueued
    /// onto its shard worker; smaller sub-batches run inline on the
    /// calling thread. A worker handoff costs a queue push plus a worker
    /// wakeup, which only amortizes over enough per-shard work — tiny
    /// groups (e.g. a batch of 32 spread over 4 nodes x 2 shards) are
    /// faster executed in place, exactly as before the executor existed.
    /// The default (16) is sized so a sub-batch of pure cache hits still
    /// outweighs a wakeup; expensive sub-batches (index misses, fabric
    /// waits) clear it easily. `0` (or `1`) enqueues every sub-batch.
    pub executor_min_sub_batch: usize,
}

impl Default for KvsConfig {
    fn default() -> Self {
        KvsConfig {
            variant: Variant::Dinomo,
            initial_kns: 1,
            threads_per_kn: 8,
            cache_bytes_per_kn: 64 << 20,
            cache_kind: None,
            write_batch_ops: 8,
            dpm: DpmConfig::default(),
            fabric: FabricConfig::default(),
            ring_vnodes: 64,
            executor_queue_depth: 64,
            executor_min_sub_batch: 16,
        }
    }
}

impl KvsConfig {
    /// A small, fast configuration for unit tests.
    pub fn small_for_tests() -> Self {
        KvsConfig {
            initial_kns: 2,
            threads_per_kn: 2,
            cache_bytes_per_kn: 256 << 10,
            write_batch_ops: 4,
            dpm: DpmConfig::small_for_tests(),
            executor_queue_depth: 8,
            // Tests want the concurrent path exercised even by small
            // batches; production-sized defaults would run most
            // test-sized sub-batches inline.
            executor_min_sub_batch: 2,
            ..KvsConfig::default()
        }
    }

    /// Same configuration but for a different variant.
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Effective cache policy.
    pub fn effective_cache_kind(&self) -> CacheKind {
        self.cache_kind
            .unwrap_or_else(|| self.variant.default_cache())
    }

    /// Cache budget per shard (thread) in bytes.
    pub fn cache_bytes_per_shard(&self) -> usize {
        self.cache_bytes_per_kn / self.threads_per_kn.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_properties() {
        assert_eq!(Variant::Dinomo.default_cache(), CacheKind::Dac);
        assert_eq!(Variant::DinomoS.default_cache(), CacheKind::ShortcutOnly);
        assert!(Variant::Dinomo.supports_selective_replication());
        assert!(!Variant::DinomoN.supports_selective_replication());
        assert!(Variant::DinomoN.requires_data_reshuffle());
        assert!(!Variant::Dinomo.requires_data_reshuffle());
        assert_eq!(Variant::DinomoN.name(), "dinomo-n");
    }

    #[test]
    fn cache_kind_override() {
        let mut c = KvsConfig::default();
        assert_eq!(c.effective_cache_kind(), CacheKind::Dac);
        c.cache_kind = Some(CacheKind::ValueOnly);
        assert_eq!(c.effective_cache_kind(), CacheKind::ValueOnly);
        assert_eq!(
            c.cache_bytes_per_shard(),
            c.cache_bytes_per_kn / c.threads_per_kn
        );
    }
}
