//! The unified request model of the batched client API.
//!
//! Every client request is an [`Op`]; every response is a [`Reply`]. The
//! per-key convenience methods on [`crate::KvsClient`] are thin wrappers
//! that submit a single `Op` through [`crate::KvsClient::execute`], and the
//! batched path submits many at once so the client can group them by owner
//! KVS node and amortize routing, node lookup and shard locking — the same
//! request-batching idea the paper uses to amortize log writes (§3.6).

use crate::error::KvsError;
use crate::Result;

/// A single client operation over variable-sized keys and values.
///
/// Constructors accept anything byte-like (`&[u8]`, `&str`, `Vec<u8>`,
/// arrays), matching the paper's §3 API of `insert`, `update`, `lookup` and
/// `delete`:
///
/// ```
/// use dinomo_core::Op;
///
/// let ops = vec![
///     Op::insert("user1", "v1"),
///     Op::lookup("user1"),
///     Op::delete(b"user1".to_vec()),
/// ];
/// assert_eq!(ops[1].key(), b"user1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `insert(key, value)`: write a value under a key. Inserts are
    /// **upserts** (see [`crate::KvsClient::insert`] for the semantics).
    Insert {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// `update(key, value)`: overwrite the value of a key.
    Update {
        /// The key.
        key: Vec<u8>,
        /// The new value.
        value: Vec<u8>,
    },
    /// `lookup(key)`: read a key's current value.
    Lookup {
        /// The key.
        key: Vec<u8>,
    },
    /// `delete(key)`: remove a key.
    Delete {
        /// The key.
        key: Vec<u8>,
    },
    /// `scan(start, n)`: read up to `n` key/value pairs in key order,
    /// starting at the smallest key `>= start`. Served from the ordered
    /// secondary index beside the hash index; the client fans a scan out
    /// to every live KVS node and merges the sorted partial results.
    Scan {
        /// Inclusive lower bound of the range.
        start: Vec<u8>,
        /// Maximum number of pairs to return.
        n: usize,
    },
}

impl Op {
    /// Build an insert.
    pub fn insert(key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> Self {
        Op::Insert {
            key: key.as_ref().to_vec(),
            value: value.as_ref().to_vec(),
        }
    }

    /// Build an update.
    pub fn update(key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> Self {
        Op::Update {
            key: key.as_ref().to_vec(),
            value: value.as_ref().to_vec(),
        }
    }

    /// Build a lookup.
    pub fn lookup(key: impl AsRef<[u8]>) -> Self {
        Op::Lookup {
            key: key.as_ref().to_vec(),
        }
    }

    /// Build a delete.
    pub fn delete(key: impl AsRef<[u8]>) -> Self {
        Op::Delete {
            key: key.as_ref().to_vec(),
        }
    }

    /// Build a scan.
    pub fn scan(start: impl AsRef<[u8]>, n: usize) -> Self {
        Op::Scan {
            start: start.as_ref().to_vec(),
            n,
        }
    }

    /// The key this operation targets (the start key, for scans).
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Insert { key, .. }
            | Op::Update { key, .. }
            | Op::Lookup { key }
            | Op::Delete { key } => key,
            Op::Scan { start, .. } => start,
        }
    }

    /// `true` for inserts, updates and deletes.
    pub fn is_write(&self) -> bool {
        !matches!(self, Op::Lookup { .. } | Op::Scan { .. })
    }

    /// `true` for scans (which route to every node instead of one owner).
    pub fn is_scan(&self) -> bool {
        matches!(self, Op::Scan { .. })
    }

    /// The reply for this op when the node returned `read` (lookups carry
    /// the read value, writes acknowledge). Scans never take this path —
    /// the client merges fanned-out partial results into [`Reply::Scan`]
    /// itself.
    pub(crate) fn reply_from(&self, read: Option<Vec<u8>>) -> Reply {
        match self {
            Op::Lookup { .. } => Reply::Value(read),
            _ => Reply::Done,
        }
    }
}

/// The per-operation outcome of [`crate::KvsClient::execute`].
///
/// Replies are positional: `execute(ops)[i]` answers `ops[i]`. The
/// accessors cover the common shapes — peeking at a read
/// ([`Reply::value`]), converting to the classic `Result` forms
/// ([`Reply::into_value`], [`Reply::into_ack`]) and checking for errors:
///
/// ```
/// use dinomo_core::{Kvs, Op, Reply};
///
/// let kvs = Kvs::builder().small_for_tests().build().unwrap();
/// let client = kvs.client();
///
/// let replies = client.execute(vec![
///     Op::insert("k", "v"),
///     Op::lookup("k"),
///     Op::lookup("missing"),
/// ]);
/// assert_eq!(replies[0], Reply::Done);
/// assert_eq!(replies[1].value(), Some(&b"v"[..]));
/// assert_eq!(replies[2], Reply::Value(None));
/// assert!(replies.iter().all(Reply::is_ok));
/// assert_eq!(replies[1].clone().into_value().unwrap(), Some(b"v".to_vec()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A write (insert/update/delete) was applied.
    Done,
    /// A lookup completed; `None` means the key does not exist.
    Value(Option<Vec<u8>>),
    /// A scan completed: up to `n` key/value pairs in strictly increasing
    /// key order (fewer when the key space ends first).
    Scan(Vec<(Vec<u8>, Vec<u8>)>),
    /// The operation failed after exhausting routing retries (or hit a
    /// non-retryable error such as a persistent-memory failure).
    Error(KvsError),
}

impl Reply {
    /// `true` unless the operation failed.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Reply::Error(_))
    }

    /// The read bytes, if this is a successful lookup of an existing key.
    pub fn value(&self) -> Option<&[u8]> {
        match self {
            Reply::Value(Some(v)) => Some(v),
            _ => None,
        }
    }

    /// The error, if the operation failed.
    pub fn err(&self) -> Option<&KvsError> {
        match self {
            Reply::Error(e) => Some(e),
            _ => None,
        }
    }

    /// The scanned pairs, if this is a successful scan.
    pub fn pairs(&self) -> Option<&[(Vec<u8>, Vec<u8>)]> {
        match self {
            Reply::Scan(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Convert a lookup reply into the classic `Result<Option<Vec<u8>>>`
    /// shape (writes convert to `Ok(None)`; scans to their first value).
    pub fn into_value(self) -> Result<Option<Vec<u8>>> {
        match self {
            Reply::Value(v) => Ok(v),
            Reply::Done => Ok(None),
            Reply::Scan(pairs) => Ok(pairs.into_iter().next().map(|(_, v)| v)),
            Reply::Error(e) => Err(e),
        }
    }

    /// Convert a scan reply into `Result<Vec<(key, value)>>` (non-scan
    /// successes convert to an empty list).
    pub fn into_pairs(self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match self {
            Reply::Scan(pairs) => Ok(pairs),
            Reply::Error(e) => Err(e),
            _ => Ok(Vec::new()),
        }
    }

    /// Convert a write reply into `Result<()>` (a lookup reply converts to
    /// `Ok(())` as long as it succeeded).
    pub fn into_ack(self) -> Result<()> {
        match self {
            Reply::Error(e) => Err(e),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_accept_anything_byte_like() {
        assert_eq!(Op::insert("k", b"v").key(), b"k");
        assert_eq!(Op::update(b"k", [1u8, 2]).key(), b"k");
        assert_eq!(Op::lookup("k"), Op::Lookup { key: b"k".to_vec() });
        assert!(Op::delete("k").is_write());
        assert!(!Op::lookup("k").is_write());
    }

    #[test]
    fn reply_accessors_and_conversions() {
        let hit = Reply::Value(Some(b"v".to_vec()));
        assert!(hit.is_ok());
        assert_eq!(hit.value(), Some(&b"v"[..]));
        assert_eq!(hit.clone().into_value().unwrap(), Some(b"v".to_vec()));
        assert!(hit.into_ack().is_ok());

        let miss = Reply::Value(None);
        assert_eq!(miss.value(), None);
        assert_eq!(miss.into_value().unwrap(), None);

        assert!(Reply::Done.is_ok());
        assert!(Reply::Done.into_ack().is_ok());

        let failed = Reply::Error(KvsError::NoNodes);
        assert!(!failed.is_ok());
        assert_eq!(failed.err(), Some(&KvsError::NoNodes));
        assert!(failed.clone().into_value().is_err());
        assert!(failed.into_ack().is_err());
    }

    #[test]
    fn scan_op_and_reply_accessors() {
        let op = Op::scan("k010", 5);
        assert_eq!(op.key(), b"k010");
        assert!(!op.is_write());
        assert!(op.is_scan());
        assert!(!Op::lookup("k").is_scan());

        let pairs = vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), b"2".to_vec()),
        ];
        let reply = Reply::Scan(pairs.clone());
        assert!(reply.is_ok());
        assert_eq!(reply.pairs(), Some(&pairs[..]));
        assert_eq!(reply.clone().into_pairs().unwrap(), pairs);
        assert_eq!(reply.clone().into_value().unwrap(), Some(b"1".to_vec()));
        assert!(reply.into_ack().is_ok());
        assert_eq!(Reply::Done.pairs(), None);
        assert_eq!(Reply::Done.into_pairs().unwrap(), Vec::new());
        assert!(Reply::Error(KvsError::NoNodes).into_pairs().is_err());
    }

    #[test]
    fn replies_are_shaped_by_the_op_kind() {
        assert_eq!(
            Op::lookup("k").reply_from(Some(b"v".to_vec())),
            Reply::Value(Some(b"v".to_vec()))
        );
        assert_eq!(Op::lookup("k").reply_from(None), Reply::Value(None));
        assert_eq!(Op::insert("k", "v").reply_from(None), Reply::Done);
        assert_eq!(Op::delete("k").reply_from(None), Reply::Done);
    }
}
