//! Log-scale latency histogram — re-exported from `dinomo_obs`.
//!
//! The implementation moved to the observability crate (`crates/obs`)
//! so registry histograms and the core crate share one bucket layout
//! without `dinomo_obs` depending upward; this module keeps the
//! historical `dinomo_core::hist::LogHistogram` path working.

pub use dinomo_obs::hist::LogHistogram;
