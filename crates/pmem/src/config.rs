//! Pool configuration.

use crate::profile::MediaProfile;
use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::PmemPool`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmemConfig {
    /// Total pool capacity in bytes. Rounded up to a multiple of 8.
    pub capacity_bytes: u64,
    /// Media timing profile (DRAM emulation vs Optane PM).
    pub profile: MediaProfile,
    /// When `true`, every store records its cache line as dirty until
    /// [`crate::PmemPool::persist`] + [`crate::PmemPool::drain`] are called,
    /// and [`crate::PmemPool::simulate_crash`] destroys unpersisted lines.
    ///
    /// Tracking costs a mutex acquisition per store, so it is enabled for
    /// correctness tests and disabled for throughput benchmarks.
    pub track_persistence: bool,
}

impl Default for PmemConfig {
    fn default() -> Self {
        PmemConfig {
            // The paper's DPM uses 110 GB; the default here is laptop-sized.
            capacity_bytes: 256 << 20,
            profile: MediaProfile::dram(),
            track_persistence: false,
        }
    }
}

impl PmemConfig {
    /// A small pool with persistence tracking on, convenient for unit tests.
    pub fn small_for_tests() -> Self {
        PmemConfig {
            capacity_bytes: 4 << 20,
            profile: MediaProfile::dram(),
            track_persistence: true,
        }
    }

    /// A pool of the given capacity with default settings.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        PmemConfig {
            capacity_bytes,
            ..PmemConfig::default()
        }
    }

    /// Same pool but with the Optane PM timing profile.
    pub fn on_optane(mut self) -> Self {
        self.profile = MediaProfile::optane();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = PmemConfig::with_capacity(1 << 20).on_optane();
        assert_eq!(c.capacity_bytes, 1 << 20);
        assert_eq!(c.profile, MediaProfile::optane());
        assert!(!c.track_persistence);
        assert!(PmemConfig::small_for_tests().track_persistence);
    }
}
