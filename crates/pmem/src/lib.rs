//! # dinomo-pmem — simulated disaggregated persistent memory pool
//!
//! The paper assumes a centralized, reliable pool of persistent memory (PM)
//! reachable over the network, emulated in their testbed with RDMA-registered
//! DRAM and validated on an Optane DC PM machine.  Real PM hardware is not
//! available here, so this crate provides a software PM pool with the
//! properties the rest of the system relies on:
//!
//! * **Byte-addressable shared memory** — a word-granular atomic arena
//!   ([`PmemPool`]) that many threads (KVS-node NICs issuing one-sided
//!   operations and DPM processor threads) can read and write concurrently
//!   without locks, exactly like RDMA-registered memory.
//! * **An allocator** — callers obtain [`PmAddr`] regions for log segments,
//!   hash-table buckets and indirect cells ([`PmemPool::alloc`] /
//!   [`PmemPool::free`]).
//! * **Persistence primitives** — `clwb`/`sfence`-style flush and fence
//!   emulation with dirty-cache-line tracking, so crash consistency of the
//!   commit-marker protocol can be tested ([`PmemPool::persist`],
//!   [`PmemPool::drain`], [`PmemPool::simulate_crash`]).
//! * **Media timing profiles** — DRAM vs Optane latency/bandwidth numbers
//!   ([`MediaProfile`]) used by the Figure 4 harness to model the gap between
//!   DRAM and PM merge throughput.
//! * **Failure injection** — allocation failures for exercising error paths.

#![warn(missing_docs)]

pub mod alloc;
pub mod config;
pub mod error;
pub mod pool;
pub mod profile;

pub use config::PmemConfig;
pub use error::PmemError;
pub use pool::{PmAddr, PmemPool, PmemStats};
pub use profile::{MediaKind, MediaProfile};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn end_to_end_alloc_write_read() {
        let pool = Arc::new(PmemPool::new(PmemConfig::small_for_tests()));
        let addr = pool.alloc(128).unwrap();
        let data = vec![0xAB_u8; 100];
        pool.write_bytes(addr, &data);
        pool.persist(addr, 100);
        pool.drain();
        let mut out = vec![0u8; 100];
        pool.read_bytes(addr, &mut out);
        assert_eq!(out, data);
    }
}
