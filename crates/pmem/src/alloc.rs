//! A simple segregated free-list allocator over the pool.
//!
//! The DPM allocates a small number of object shapes — 8 MB log segments,
//! hash-table bucket arrays, 16-byte indirect cells and metadata blobs — so a
//! bump allocator with per-size free lists is sufficient and keeps allocation
//! off any hot path (KNs pre-allocate log segments ahead of time, §4).

use crate::error::PmemError;
use std::collections::BTreeMap;

/// Byte offset 0 is reserved so it can act as a null pointer; allocations
/// start at this offset.
pub(crate) const ALLOC_BASE: u64 = 64;

#[derive(Debug)]
pub(crate) struct Allocator {
    capacity: u64,
    bump: u64,
    /// size class (rounded-up length) -> freed offsets of exactly that class.
    free_lists: BTreeMap<u64, Vec<u64>>,
    allocated_bytes: u64,
    freed_bytes: u64,
    /// Remaining number of allocations to fail (failure injection).
    fail_next: u64,
}

impl Allocator {
    pub(crate) fn new(capacity: u64) -> Self {
        Allocator {
            capacity,
            bump: ALLOC_BASE,
            free_lists: BTreeMap::new(),
            allocated_bytes: 0,
            freed_bytes: 0,
            fail_next: 0,
        }
    }

    pub(crate) fn size_class(len: u64) -> u64 {
        len.max(8).div_ceil(8) * 8
    }

    pub(crate) fn alloc(&mut self, len: u64) -> Result<u64, PmemError> {
        if self.fail_next > 0 {
            self.fail_next -= 1;
            return Err(PmemError::InjectedFailure);
        }
        let class = Self::size_class(len);
        if let Some(list) = self.free_lists.get_mut(&class) {
            if let Some(addr) = list.pop() {
                self.allocated_bytes += class;
                self.freed_bytes = self.freed_bytes.saturating_sub(class);
                return Ok(addr);
            }
        }
        if self.bump + class > self.capacity {
            return Err(PmemError::OutOfMemory {
                requested: class,
                available: self.capacity.saturating_sub(self.bump),
            });
        }
        let addr = self.bump;
        self.bump += class;
        self.allocated_bytes += class;
        Ok(addr)
    }

    pub(crate) fn free(&mut self, addr: u64, len: u64) {
        let class = Self::size_class(len);
        self.free_lists.entry(class).or_default().push(addr);
        self.allocated_bytes = self.allocated_bytes.saturating_sub(class);
        self.freed_bytes += class;
    }

    pub(crate) fn inject_failures(&mut self, count: u64) {
        self.fail_next = count;
    }

    pub(crate) fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    pub(crate) fn freed_bytes(&self) -> u64 {
        self.freed_bytes
    }

    pub(crate) fn high_water_mark(&self) -> u64 {
        self.bump
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_aligned_disjoint_regions() {
        let mut a = Allocator::new(1024);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(10).unwrap();
        assert_eq!(x % 8, 0);
        assert_eq!(y % 8, 0);
        assert!(y >= x + 16, "regions must not overlap");
        assert_eq!(a.allocated_bytes(), 32);
    }

    #[test]
    fn free_list_reuses_same_size_class() {
        let mut a = Allocator::new(1024);
        let x = a.alloc(64).unwrap();
        a.free(x, 64);
        let y = a.alloc(60).unwrap(); // same 64-byte class
        assert_eq!(x, y);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut a = Allocator::new(128);
        assert!(a.alloc(32).is_ok());
        let err = a.alloc(1024).unwrap_err();
        match err {
            PmemError::OutOfMemory { requested, .. } => assert_eq!(requested, 1024),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn failure_injection() {
        let mut a = Allocator::new(1024);
        a.inject_failures(2);
        assert_eq!(a.alloc(8), Err(PmemError::InjectedFailure));
        assert_eq!(a.alloc(8), Err(PmemError::InjectedFailure));
        assert!(a.alloc(8).is_ok());
    }

    #[test]
    fn size_class_rounds_up_to_words() {
        assert_eq!(Allocator::size_class(1), 8);
        assert_eq!(Allocator::size_class(8), 8);
        assert_eq!(Allocator::size_class(9), 16);
        assert_eq!(Allocator::size_class(0), 8);
    }
}
