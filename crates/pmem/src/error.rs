//! Error type for pool operations.

use std::fmt;

/// Errors returned by [`crate::PmemPool`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// The pool does not have enough free space for the requested allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining in the pool.
        available: u64,
    },
    /// An injected allocation failure (failure-injection testing).
    InjectedFailure,
    /// An address/length pair falls outside the pool.
    OutOfBounds {
        /// Offending address (byte offset).
        addr: u64,
        /// Access length in bytes.
        len: u64,
        /// Pool capacity in bytes.
        capacity: u64,
    },
    /// An address was not aligned as required (8-byte alignment for word
    /// operations).
    Misaligned {
        /// Offending address (byte offset).
        addr: u64,
    },
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "pmem pool out of memory: requested {requested} bytes, {available} available"
                )
            }
            PmemError::InjectedFailure => write!(f, "injected pmem allocation failure"),
            PmemError::OutOfBounds {
                addr,
                len,
                capacity,
            } => {
                write!(
                    f,
                    "pmem access out of bounds: addr {addr} len {len} capacity {capacity}"
                )
            }
            PmemError::Misaligned { addr } => {
                write!(f, "pmem address {addr} is not 8-byte aligned")
            }
        }
    }
}

impl std::error::Error for PmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PmemError::OutOfMemory {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(PmemError::Misaligned { addr: 3 }.to_string().contains('3'));
    }
}
