//! Media timing profiles.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Latency/bandwidth characteristics of the memory medium backing the pool.
///
/// Numbers follow the measurements the paper cites (§2.1, §5.1): PM read
/// latency in the low hundreds of nanoseconds, ~3× DRAM write latency,
/// 32 GB/s read and 11.2 GB/s write bandwidth for a fully-populated Optane
/// socket versus substantially higher DRAM bandwidth.  The Figure 4 harness
/// uses these profiles to model the DRAM-vs-PM merge-throughput gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaProfile {
    /// Which medium this profile models.
    pub kind: MediaKind,
    /// Load latency, nanoseconds.
    pub read_latency_ns: u64,
    /// Store (to persistence domain) latency, nanoseconds.
    pub write_latency_ns: u64,
    /// Sequential read bandwidth, bytes per second.
    pub read_bw_bytes_per_sec: u64,
    /// Sequential write bandwidth, bytes per second.
    pub write_bw_bytes_per_sec: u64,
    /// Cost of a cache-line write-back (`clwb`) plus its share of the fence,
    /// nanoseconds.
    pub flush_latency_ns: u64,
}

/// The medium a [`MediaProfile`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MediaKind {
    /// DRAM emulating PM (the paper's main testbed).
    Dram,
    /// Intel Optane DC persistent memory.
    Optane,
}

impl MediaKind {
    /// Lower-case name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            MediaKind::Dram => "dram",
            MediaKind::Optane => "optane",
        }
    }
}

impl MediaProfile {
    /// Lower-case name of the medium, used in benchmark output.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// DRAM used as a stand-in for PM (the paper's main testbed).
    pub const fn dram() -> Self {
        MediaProfile {
            kind: MediaKind::Dram,
            read_latency_ns: 80,
            write_latency_ns: 80,
            read_bw_bytes_per_sec: 90_000_000_000,
            write_bw_bytes_per_sec: 45_000_000_000,
            flush_latency_ns: 100,
        }
    }

    /// Intel Optane DC persistent memory.
    pub const fn optane() -> Self {
        MediaProfile {
            kind: MediaKind::Optane,
            read_latency_ns: 300,
            write_latency_ns: 250,
            read_bw_bytes_per_sec: 32_000_000_000,
            write_bw_bytes_per_sec: 11_200_000_000,
            flush_latency_ns: 250,
        }
    }

    /// Modeled time to read `bytes` bytes sequentially.
    pub fn read_time(&self, bytes: u64) -> Duration {
        Duration::from_nanos(
            self.read_latency_ns + bytes.saturating_mul(1_000_000_000) / self.read_bw_bytes_per_sec,
        )
    }

    /// Modeled time to write and persist `bytes` bytes sequentially
    /// (store + flush of each cache line, bandwidth-limited).
    pub fn write_time(&self, bytes: u64) -> Duration {
        let lines = bytes.div_ceil(64);
        Duration::from_nanos(
            self.write_latency_ns
                + lines * self.flush_latency_ns / 8 // flushes pipeline ~8 deep
                + bytes.saturating_mul(1_000_000_000) / self.write_bw_bytes_per_sec,
        )
    }
}

impl Default for MediaProfile {
    fn default() -> Self {
        MediaProfile::dram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optane_is_slower_than_dram() {
        let d = MediaProfile::dram();
        let o = MediaProfile::optane();
        assert!(o.read_time(4096) > d.read_time(4096));
        assert!(o.write_time(4096) > d.write_time(4096));
        assert!(o.write_bw_bytes_per_sec < d.write_bw_bytes_per_sec);
    }

    #[test]
    fn write_time_scales_with_size() {
        let o = MediaProfile::optane();
        assert!(o.write_time(1 << 20) > o.write_time(1 << 10));
    }
}
