//! The persistent-memory pool itself.

use crate::alloc::Allocator;
use crate::config::PmemConfig;
use crate::error::PmemError;
use crate::profile::MediaProfile;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// A byte offset into the pool. Offset `0` is never returned by the allocator
/// and doubles as a null pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PmAddr(pub u64);

impl PmAddr {
    /// The null address.
    pub const NULL: PmAddr = PmAddr(0);

    /// `true` if this is the null address.
    pub fn is_null(&self) -> bool {
        self.0 == 0
    }

    /// Address `offset` bytes past this one.
    pub fn offset(&self, offset: u64) -> PmAddr {
        PmAddr(self.0 + offset)
    }
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmemStats {
    /// Bytes currently allocated.
    pub allocated_bytes: u64,
    /// Bytes sitting on free lists.
    pub freed_bytes: u64,
    /// Highest offset ever handed out (bump pointer).
    pub high_water_mark: u64,
    /// Number of cache-line flushes (`clwb` emulation) issued.
    pub flushes: u64,
    /// Number of fences (`sfence` emulation) issued.
    pub fences: u64,
    /// Total bytes written into the pool.
    pub bytes_written: u64,
    /// Total bytes read from the pool.
    pub bytes_read: u64,
}

/// The simulated persistent-memory pool.
///
/// Internally the pool is a word array of atomics, so concurrent readers and
/// writers never block each other — mirroring RDMA-registered physical
/// memory.  Word (8-byte) reads, writes and compare-and-swap are individually
/// atomic; multi-word transfers are not atomic as a unit, which matches the
/// semantics of one-sided RDMA and is exactly why the upper layers need
/// commit markers and atomic snapshots.
#[derive(Debug)]
pub struct PmemPool {
    words: Vec<AtomicU64>,
    config: PmemConfig,
    allocator: Mutex<Allocator>,
    /// Dirty (written but not yet persisted) cache lines, tracked only when
    /// `config.track_persistence` is set.
    dirty_lines: Mutex<HashSet<u64>>,
    flushes: AtomicU64,
    fences: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl PmemPool {
    /// Create a pool with the given configuration.
    pub fn new(config: PmemConfig) -> Self {
        let capacity = config.capacity_bytes.div_ceil(8) * 8;
        let num_words = (capacity / 8) as usize;
        let mut words = Vec::with_capacity(num_words);
        words.resize_with(num_words, || AtomicU64::new(0));
        PmemPool {
            words,
            allocator: Mutex::new(Allocator::new(capacity)),
            config: PmemConfig {
                capacity_bytes: capacity,
                ..config
            },
            dirty_lines: Mutex::new(HashSet::new()),
            flushes: AtomicU64::new(0),
            fences: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        }
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.config.capacity_bytes
    }

    /// The media timing profile.
    pub fn profile(&self) -> &MediaProfile {
        &self.config.profile
    }

    /// Allocate `len` bytes; the returned address is 8-byte aligned.
    pub fn alloc(&self, len: u64) -> Result<PmAddr, PmemError> {
        self.allocator.lock().alloc(len).map(PmAddr)
    }

    /// Return a previously allocated region to the pool.
    pub fn free(&self, addr: PmAddr, len: u64) {
        self.allocator.lock().free(addr.0, len);
    }

    /// Make the next `count` allocations fail (failure injection).
    pub fn inject_alloc_failures(&self, count: u64) {
        self.allocator.lock().inject_failures(count);
    }

    fn check(&self, addr: PmAddr, len: u64) -> Result<(), PmemError> {
        if addr
            .0
            .checked_add(len)
            .is_none_or(|end| end > self.capacity())
        {
            return Err(PmemError::OutOfBounds {
                addr: addr.0,
                len,
                capacity: self.capacity(),
            });
        }
        Ok(())
    }

    fn word_index(&self, addr: PmAddr) -> Result<usize, PmemError> {
        if !addr.0.is_multiple_of(8) {
            return Err(PmemError::Misaligned { addr: addr.0 });
        }
        self.check(addr, 8)?;
        Ok((addr.0 / 8) as usize)
    }

    /// Atomically read the 8-byte word at `addr` (must be 8-byte aligned).
    pub fn read_u64(&self, addr: PmAddr) -> u64 {
        let idx = self.word_index(addr).expect("read_u64: bad address");
        self.bytes_read.fetch_add(8, Ordering::Relaxed);
        self.words[idx].load(Ordering::Acquire)
    }

    /// Atomically write the 8-byte word at `addr` (must be 8-byte aligned).
    pub fn write_u64(&self, addr: PmAddr, value: u64) {
        let idx = self.word_index(addr).expect("write_u64: bad address");
        self.words[idx].store(value, Ordering::Release);
        self.bytes_written.fetch_add(8, Ordering::Relaxed);
        self.mark_dirty(addr.0, 8);
    }

    /// Atomically compare-and-swap the word at `addr`. On success returns
    /// `Ok(previous)`, on failure `Err(actual)`.
    pub fn cas_u64(&self, addr: PmAddr, expected: u64, new: u64) -> Result<u64, u64> {
        let idx = self.word_index(addr).expect("cas_u64: bad address");
        let r =
            self.words[idx].compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire);
        if r.is_ok() {
            self.bytes_written.fetch_add(8, Ordering::Relaxed);
            self.mark_dirty(addr.0, 8);
        }
        r
    }

    /// Copy `buf.len()` bytes from the pool starting at `addr` into `buf`.
    /// Individual words are read atomically; the transfer as a whole is not.
    pub fn read_bytes(&self, addr: PmAddr, buf: &mut [u8]) {
        self.check(addr, buf.len() as u64)
            .expect("read_bytes: out of bounds");
        self.bytes_read
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        let mut pos = 0usize;
        let mut cur = addr.0;
        while pos < buf.len() {
            let word_idx = (cur / 8) as usize;
            let in_word = (cur % 8) as usize;
            let take = (8 - in_word).min(buf.len() - pos);
            let word = self.words[word_idx].load(Ordering::Acquire).to_le_bytes();
            buf[pos..pos + take].copy_from_slice(&word[in_word..in_word + take]);
            pos += take;
            cur += take as u64;
        }
    }

    /// Copy `data` into the pool starting at `addr`. Individual words are
    /// updated atomically (read-modify-write for partial words); the transfer
    /// as a whole is not atomic.
    pub fn write_bytes(&self, addr: PmAddr, data: &[u8]) {
        self.check(addr, data.len() as u64)
            .expect("write_bytes: out of bounds");
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        let mut pos = 0usize;
        let mut cur = addr.0;
        while pos < data.len() {
            let word_idx = (cur / 8) as usize;
            let in_word = (cur % 8) as usize;
            let take = (8 - in_word).min(data.len() - pos);
            if take == 8 {
                let mut w = [0u8; 8];
                w.copy_from_slice(&data[pos..pos + 8]);
                self.words[word_idx].store(u64::from_le_bytes(w), Ordering::Release);
            } else {
                // Partial word: read-modify-write. Safe because the upper
                // layers never let two writers touch the same region
                // concurrently (exclusive log ownership / bucket locks).
                let mut w = self.words[word_idx].load(Ordering::Acquire).to_le_bytes();
                w[in_word..in_word + take].copy_from_slice(&data[pos..pos + take]);
                self.words[word_idx].store(u64::from_le_bytes(w), Ordering::Release);
            }
            pos += take;
            cur += take as u64;
        }
        self.mark_dirty(addr.0, data.len() as u64);
    }

    fn mark_dirty(&self, addr: u64, len: u64) {
        if !self.config.track_persistence || len == 0 {
            return;
        }
        let first = addr / 64;
        let last = (addr + len - 1) / 64;
        let mut dirty = self.dirty_lines.lock();
        for line in first..=last {
            dirty.insert(line);
        }
    }

    /// Emulate `clwb` over the cache lines covering `[addr, addr+len)`.
    pub fn persist(&self, addr: PmAddr, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr.0 / 64;
        let last = (addr.0 + len - 1) / 64;
        self.flushes.fetch_add(last - first + 1, Ordering::Relaxed);
        if self.config.track_persistence {
            let mut dirty = self.dirty_lines.lock();
            for line in first..=last {
                dirty.remove(&line);
            }
        }
    }

    /// Emulate `sfence`.
    pub fn drain(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    /// Simulate a power failure: every cache line written since its last
    /// `persist` is destroyed (zeroed).  Only meaningful when the pool was
    /// created with `track_persistence = true`.
    pub fn simulate_crash(&self) {
        if !self.config.track_persistence {
            return;
        }
        let mut dirty = self.dirty_lines.lock();
        for line in dirty.drain() {
            let start_word = (line * 64 / 8) as usize;
            for w in 0..8 {
                if let Some(slot) = self.words.get(start_word + w) {
                    slot.store(0, Ordering::Release);
                }
            }
        }
    }

    /// Number of currently dirty (unpersisted) cache lines.
    pub fn dirty_line_count(&self) -> usize {
        self.dirty_lines.lock().len()
    }

    /// Snapshot pool statistics.
    pub fn stats(&self) -> PmemStats {
        let alloc = self.allocator.lock();
        PmemStats {
            allocated_bytes: alloc.allocated_bytes(),
            freed_bytes: alloc.freed_bytes(),
            high_water_mark: alloc.high_water_mark(),
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PmemPool {
        PmemPool::new(PmemConfig::small_for_tests())
    }

    #[test]
    fn word_roundtrip_and_cas() {
        let p = pool();
        let a = p.alloc(8).unwrap();
        p.write_u64(a, 42);
        assert_eq!(p.read_u64(a), 42);
        assert_eq!(p.cas_u64(a, 42, 43), Ok(42));
        assert_eq!(p.cas_u64(a, 42, 44), Err(43));
        assert_eq!(p.read_u64(a), 43);
    }

    #[test]
    fn unaligned_byte_io() {
        let p = pool();
        let a = p.alloc(64).unwrap();
        let data: Vec<u8> = (0..37).collect();
        p.write_bytes(a.offset(3), &data);
        let mut out = vec![0u8; 37];
        p.read_bytes(a.offset(3), &mut out);
        assert_eq!(out, data);
        // Bytes before offset 3 must be untouched.
        let mut head = [0u8; 3];
        p.read_bytes(a, &mut head);
        assert_eq!(head, [0, 0, 0]);
    }

    #[test]
    fn misaligned_word_access_is_rejected() {
        let p = pool();
        let a = p.alloc(16).unwrap();
        assert!(p.word_index(a.offset(4)).is_err());
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let p = pool();
        let cap = p.capacity();
        assert!(p.check(PmAddr(cap - 4), 8).is_err());
        assert!(p.check(PmAddr(cap), 1).is_err());
        assert!(p.check(PmAddr(0), 8).is_ok());
    }

    #[test]
    fn crash_destroys_unpersisted_data_only() {
        let p = pool();
        let a = p.alloc(128).unwrap();
        let b = p.alloc(128).unwrap();
        p.write_bytes(a, &[0xAA; 64]);
        p.persist(a, 64);
        p.drain();
        p.write_bytes(b, &[0xBB; 64]);
        // b was never persisted.
        p.simulate_crash();
        let mut out = vec![0u8; 64];
        p.read_bytes(a, &mut out);
        assert_eq!(out, vec![0xAA; 64]);
        p.read_bytes(b, &mut out);
        assert_eq!(out, vec![0u8; 64]);
    }

    #[test]
    fn stats_track_activity() {
        let p = pool();
        let a = p.alloc(64).unwrap();
        p.write_bytes(a, &[1u8; 64]);
        p.persist(a, 64);
        p.drain();
        let mut out = vec![0u8; 64];
        p.read_bytes(a, &mut out);
        let s = p.stats();
        assert_eq!(s.allocated_bytes, 64);
        assert!(s.flushes >= 1);
        assert_eq!(s.fences, 1);
        assert!(s.bytes_written >= 64);
        assert!(s.bytes_read >= 64);
        p.free(a, 64);
        assert_eq!(p.stats().allocated_bytes, 0);
    }

    #[test]
    fn null_addr() {
        assert!(PmAddr::NULL.is_null());
        assert!(!PmAddr(8).is_null());
        assert_eq!(PmAddr(8).offset(8), PmAddr(16));
    }

    #[test]
    fn concurrent_word_writes_do_not_corrupt() {
        use std::sync::Arc;
        let p = Arc::new(PmemPool::new(PmemConfig::with_capacity(1 << 20)));
        let a = p.alloc(8 * 64).unwrap();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let addr = a.offset((i % 64) * 8);
                    p.write_u64(addr, t * 1_000_000 + i);
                    let v = p.read_u64(addr);
                    // The value must always be a value some thread wrote
                    // in this pattern (no torn words).
                    assert!(v % 1_000_000 < 1000);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
