//! An HDR-style log-bucketed latency histogram.
//!
//! [`LogHistogram`] records `u64` values (nanoseconds, by convention) into
//! logarithmically-spaced buckets: values below 64 get unit-width buckets,
//! and every power-of-two octave above that is split into 64 sub-buckets,
//! so any recorded value is represented with a relative error of at most
//! `1/64` (~1.6 %). Memory is a fixed ~30 KiB regardless of how many
//! values are recorded, recording is two shifts and an add, and two
//! histograms merge bucket-wise — which is what lets per-thread recorders
//! in the experiment drivers aggregate without sharing a lock on the hot
//! path.
//!
//! The open-loop bench harness (`dinomo-bench`) and the cluster
//! experiment driver (`dinomo-cluster`) both report percentiles through
//! this type; it lives here, at the bottom of the crate graph, so that
//! both see identical bucket boundaries. There are deliberately no
//! external dependencies.
//!
//! ```
//! use dinomo_obs::hist::LogHistogram;
//!
//! let mut h = LogHistogram::new();
//! for v in 1..=10_000u64 {
//!     h.record(v);
//! }
//! let p50 = h.value_at_quantile(0.50);
//! // Bucketed percentiles overestimate by at most one bucket (~1.6 %).
//! assert!((5_000..=5_100).contains(&p50), "p50 was {p50}");
//! assert_eq!(h.count(), 10_000);
//! ```

/// log2 of the number of sub-buckets per octave. 6 bits = 64 sub-buckets
/// = at most `2^-6` (~1.6 %) relative quantization error.
const SUB_BUCKET_BITS: u32 = 6;
/// Sub-buckets per octave (and the width of the unit-resolution region).
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Octaves above the unit-resolution region (values `64..=u64::MAX`).
const OCTAVES: usize = 64 - SUB_BUCKET_BITS as usize;
/// Total bucket count.
const BUCKET_COUNT: usize = SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// A fixed-size log-bucketed histogram of `u64` values. See the module
/// docs for the bucket layout and error bound.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKET_COUNT]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("mean", &self.mean())
            .field("p50", &self.value_at_quantile(0.5))
            .field("p99", &self.value_at_quantile(0.99))
            .finish()
    }
}

/// Bucket index for `value`.
fn index_of(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        // 2^k <= value < 2^(k+1), with k >= SUB_BUCKET_BITS.
        let k = 63 - value.leading_zeros();
        let shift = k - SUB_BUCKET_BITS;
        // value >> shift is in [SUB_BUCKETS, 2*SUB_BUCKETS).
        let sub = (value >> shift) as usize - SUB_BUCKETS;
        SUB_BUCKETS + (k - SUB_BUCKET_BITS) as usize * SUB_BUCKETS + sub
    }
}

/// The largest value that maps into bucket `index` (percentile queries
/// return this, so a reported percentile never undershoots the true one).
fn upper_bound_of(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let octave = ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
        let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
        let base = (SUB_BUCKETS as u64 + sub) << octave;
        // `base` has its low `octave` bits clear, so this fills them with
        // ones without the `base + 2^octave` intermediate, which would
        // overflow in the very top bucket (whose bound is u64::MAX).
        base | ((1u64 << octave) - 1)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0u64; BUCKET_COUNT]
                .into_boxed_slice()
                .try_into()
                .expect("bucket count is fixed"),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index_of(value)] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram's counts into this one (bucket-wise add).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty (keeps the allocation).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values, exact (recording keeps a running sum).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` (`0.0..=1.0`): an upper bound on the
    /// smallest value `v` such that at least `ceil(q * count)` recorded
    /// values are `<= v`, overestimating by at most one bucket width
    /// (a relative error of `1/64`). Returns 0 on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64)
            .max(1)
            .min(self.total);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                // Never report past the recorded extremes.
                return upper_bound_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Bucket-wise difference `self - earlier`: the histogram of values
    /// recorded after `earlier` was captured, for windowed views of a
    /// cumulative histogram. `earlier` must be an earlier snapshot of
    /// the same histogram (buckets saturate at zero otherwise). The
    /// window's min/max are recovered at bucket resolution — exact
    /// extremes are not derivable from cumulative counts alone.
    pub fn diff(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut out = LogHistogram::new();
        for (i, (now, then)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            let d = now.saturating_sub(*then);
            if d > 0 {
                out.counts[i] = d;
                out.min = out.min.min(upper_bound_of(i));
                out.max = out.max.max(upper_bound_of(i));
            }
        }
        out.total = self.total.saturating_sub(earlier.total);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Number of recorded values `<= value`, to bucket resolution: values
    /// sharing `value`'s bucket are all counted, so this overcounts by at
    /// most one bucket's population (fine for SLO-attainment fractions,
    /// where the threshold is orders of magnitude above the bucket width).
    pub fn count_at_or_below(&self, value: u64) -> u64 {
        self.counts[..=index_of(value)].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — a tiny local generator so these tests need no RNG dep.
    struct SplitMix(u64);
    impl SplitMix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn small_values_have_unit_resolution() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(1.0), 63);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // Exact below 64: the p50 of 0..=63 is the 32nd value (ceil(32)).
        assert_eq!(h.value_at_quantile(0.5), 31);
    }

    #[test]
    fn index_and_upper_bound_are_consistent_across_the_range() {
        // For every probe: the bucket's upper bound maps back into the
        // same bucket, and a value never lands above its bucket's upper
        // bound.
        let mut probes = vec![0u64, 1, 63, 64, 65, 127, 128, 1_000_000];
        let mut rng = SplitMix(7);
        for _ in 0..10_000 {
            let shift = (rng.next() % 64) as u32;
            probes.push(rng.next() >> shift);
        }
        probes.push(u64::MAX);
        for &v in &probes {
            let i = index_of(v);
            assert!(i < BUCKET_COUNT, "index {i} out of range for {v}");
            let ub = upper_bound_of(i);
            assert!(ub >= v, "upper bound {ub} below value {v}");
            assert_eq!(index_of(ub), i, "upper bound {ub} not in bucket of {v}");
            // Relative error bound: bucket width / value <= 1/64.
            if v >= SUB_BUCKETS as u64 {
                assert!((ub - v) as f64 <= v as f64 / 64.0 + 1.0);
            }
        }
    }

    #[test]
    fn percentiles_match_a_sorted_vector_oracle_within_one_bucket() {
        let mut rng = SplitMix(42);
        // Log-uniform samples: exercise every octave's bucket math.
        let samples: Vec<u64> = (0..50_000)
            .map(|_| {
                let shift = (rng.next() % 50) as u32;
                (rng.next() >> shift).max(1)
            })
            .collect();
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize)
                .max(1)
                .min(sorted.len());
            let oracle = sorted[rank - 1];
            let bucketed = h.value_at_quantile(q);
            assert!(
                bucketed >= oracle,
                "q={q}: bucketed {bucketed} < oracle {oracle}"
            );
            assert!(
                bucketed as f64 <= oracle as f64 * (1.0 + 1.0 / 64.0) + 1.0,
                "q={q}: bucketed {bucketed} too far above oracle {oracle}"
            );
        }
        assert_eq!(h.max(), *sorted.last().unwrap());
        assert_eq!(h.min(), sorted[0]);
        let mean_oracle = sorted.iter().map(|&v| v as f64).sum::<f64>() / sorted.len() as f64;
        assert!((h.mean() - mean_oracle).abs() < 1e-6 * mean_oracle.max(1.0));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut rng = SplitMix(9);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for i in 0..10_000u64 {
            let v = rng.next() >> (rng.next() % 40);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.value_at_quantile(q), combined.value_at_quantile(q));
        }
    }

    #[test]
    fn diff_recovers_the_window_between_two_snapshots() {
        let mut rng = SplitMix(11);
        let mut cumulative = LogHistogram::new();
        let mut window_oracle = LogHistogram::new();
        for _ in 0..5_000u64 {
            cumulative.record(rng.next() >> (rng.next() % 40));
        }
        let baseline = cumulative.clone();
        for _ in 0..5_000u64 {
            let v = rng.next() >> (rng.next() % 40);
            cumulative.record(v);
            window_oracle.record(v);
        }
        let window = cumulative.diff(&baseline);
        assert_eq!(window.count(), window_oracle.count());
        assert!((window.mean() - window_oracle.mean()).abs() < 1e-6 * window_oracle.mean());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(
                window.value_at_quantile(q),
                window_oracle.value_at_quantile(q)
            );
        }
        // Diff of identical snapshots is empty.
        assert!(cumulative.diff(&cumulative).is_empty());
    }

    #[test]
    fn count_at_or_below_brackets_the_exact_count() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let within = h.count_at_or_below(10_000);
        // Overcounts by at most one bucket (~1.6 %), never undercounts.
        assert!(within >= 10_000);
        assert!(within as f64 <= 10_000.0 * (1.0 + 1.0 / 32.0));
        assert_eq!(h.count_at_or_below(u64::MAX), h.count());
    }

    #[test]
    fn clear_resets_and_extremes_survive_extreme_values() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
    }
}
