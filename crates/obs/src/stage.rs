//! Request-lifecycle stage tracing.
//!
//! A read or write travels: client dispatch → executor queue wait →
//! shard execute → DPM lookup (reads) or flush-wait / merge-wait
//! (writes) → reply harvest. Each stage records its duration into a
//! per-stage histogram named `stage_<name>_ns`, so an end-to-end latency
//! number decomposes into *where the time went*. Stages are recorded at
//! their natural site in the pipeline (the executor records queue wait,
//! the DPM records lookup time); [`OpSpan`] is the sequential
//! convenience used where one thread walks several stages in order.

use crate::registry::{Histogram, Registry};
use std::time::Instant;

/// Pipeline stages, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Client-side batch grouping, routing, and submission.
    ClientDispatch,
    /// Sub-batch sat in an executor's bounded queue.
    QueueWait,
    /// Executor ran the sub-batch against its shard.
    ShardExecute,
    /// DPM index probe + value read (read path).
    DpmLookup,
    /// Writer stalled for merge slack before appending (write path).
    FlushWait,
    /// Caller waited for the merge engine to drain a version.
    MergeWait,
    /// Client-side reply harvest after the completion latch.
    Reply,
}

impl Stage {
    pub const ALL: [Stage; 7] = [
        Stage::ClientDispatch,
        Stage::QueueWait,
        Stage::ShardExecute,
        Stage::DpmLookup,
        Stage::FlushWait,
        Stage::MergeWait,
        Stage::Reply,
    ];

    /// Registry metric name (`stage_<name>_ns`).
    pub fn metric_name(self) -> &'static str {
        match self {
            Stage::ClientDispatch => "stage_client_dispatch_ns",
            Stage::QueueWait => "stage_queue_wait_ns",
            Stage::ShardExecute => "stage_shard_execute_ns",
            Stage::DpmLookup => "stage_dpm_lookup_ns",
            Stage::FlushWait => "stage_flush_wait_ns",
            Stage::MergeWait => "stage_merge_wait_ns",
            Stage::Reply => "stage_reply_ns",
        }
    }

    /// Human label for breakdown tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::ClientDispatch => "client dispatch",
            Stage::QueueWait => "queue wait",
            Stage::ShardExecute => "shard execute",
            Stage::DpmLookup => "dpm lookup",
            Stage::FlushWait => "flush wait",
            Stage::MergeWait => "merge wait",
            Stage::Reply => "reply",
        }
    }
}

/// Sequential span over consecutive stages of one operation: each
/// [`OpSpan::mark`] records the time since the previous mark into that
/// stage's histogram, so the marked stages tile the span end to end.
pub struct OpSpan<'a> {
    registry: &'a Registry,
    started: Instant,
    last: Instant,
    recorded_ns: u64,
}

impl<'a> OpSpan<'a> {
    pub fn start(registry: &'a Registry) -> Self {
        let now = Instant::now();
        OpSpan {
            registry,
            started: now,
            last: now,
            recorded_ns: 0,
        }
    }

    /// Close the current stage: record time since the previous mark (or
    /// span start) into `stage`, returning the stage's nanoseconds.
    pub fn mark(&mut self, stage: Stage) -> u64 {
        let now = Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        self.recorded_ns += ns;
        self.registry.stage(stage).record(ns);
        ns
    }

    /// Nanoseconds attributed to stages so far.
    pub fn recorded_ns(&self) -> u64 {
        self.recorded_ns
    }

    /// Wall-clock nanoseconds since the span started.
    pub fn total_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

/// Helper for the executor-queue pattern where the enqueue and dequeue
/// happen on different threads: capture an `Instant` at enqueue (only
/// when observability is enabled, to keep the `obs_off` baseline free of
/// clock reads) and record the elapsed wait at dequeue.
#[inline]
pub fn stage_clock() -> Option<Instant> {
    if crate::enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record the elapsed time since a [`stage_clock`] capture, if one was
/// taken.
#[inline]
pub fn record_since(h: &Histogram, since: Option<Instant>) {
    if let Some(start) = since {
        h.record(start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stage_names_are_unique_and_prefixed() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.metric_name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.starts_with("stage_") && n.ends_with("_ns"));
        }
    }

    #[test]
    fn marked_stages_sum_to_end_to_end() {
        let reg = Registry::new();
        let mut span = OpSpan::start(&reg);
        std::thread::sleep(Duration::from_millis(5));
        let a = span.mark(Stage::ClientDispatch);
        std::thread::sleep(Duration::from_millis(3));
        let b = span.mark(Stage::ShardExecute);
        std::thread::sleep(Duration::from_millis(2));
        let c = span.mark(Stage::Reply);
        let total = span.total_ns();

        // Each sleep bounds its stage from below.
        assert!(a >= 5_000_000, "dispatch stage {a} ns too short");
        assert!(b >= 3_000_000, "execute stage {b} ns too short");
        assert!(c >= 2_000_000, "reply stage {c} ns too short");
        // Consecutive marks tile the span: the stage sum can only trail
        // the wall clock by the time since the last mark.
        let recorded = span.recorded_ns();
        assert_eq!(recorded, a + b + c);
        assert!(recorded <= total);
        assert!(
            total - recorded < 5_000_000,
            "gap between stage sum and end-to-end too large: {} vs {}",
            recorded,
            total
        );

        // And every stage landed in its own histogram.
        let snap = reg.snapshot();
        for stage in [Stage::ClientDispatch, Stage::ShardExecute, Stage::Reply] {
            assert_eq!(snap.histogram(stage.metric_name()).unwrap().count, 1);
        }
    }

    #[test]
    fn stage_clock_is_none_when_disabled() {
        let _serial = crate::enabled_test_lock();
        crate::set_enabled(false);
        assert!(stage_clock().is_none());
        crate::set_enabled(true);
        assert!(stage_clock().is_some());
        let reg = Registry::new();
        let h = reg.histogram("w");
        record_since(&h, stage_clock());
        record_since(&h, None);
        assert_eq!(h.merged().count(), 1);
    }
}
