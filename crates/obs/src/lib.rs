//! # dinomo-obs — unified observability for the Dinomo reproduction
//!
//! Always-compiled, low-overhead telemetry in three parts:
//!
//! 1. **Metrics registry** ([`Registry`]) — named counters, gauges, and
//!    [`LogHistogram`]-backed latency histograms. Handles are resolved
//!    once at construction; the record path is an uncontended atomic add
//!    on a per-thread shard, merged lazily at [`Registry::snapshot`].
//! 2. **Stage tracing** ([`Stage`], [`OpSpan`]) — request-lifecycle
//!    stages (client dispatch → queue wait → shard execute → DPM lookup
//!    / flush-wait / merge-wait → reply) each record into
//!    `stage_<name>_ns`, so a latency decomposes into where it went.
//! 3. **Lock-wait profiling** ([`LockId`]) — every named lock in
//!    `docs/CONCURRENCY.md` records its acquisition wait into
//!    `lock_wait_<name>_ns`.
//!
//! Snapshots export as Prometheus text ([`Snapshot::prometheus_text`])
//! or JSON ([`Snapshot::to_json`]); the bench harness writes the latter
//! next to `BENCH_RESULTS.json`.
//!
//! ## The `obs_off` baseline
//!
//! A process-global flag ([`set_enabled`]) gates every *clock read*:
//! with observability off, timed sections run the closure and skip
//! `Instant::now()` entirely, which is the baseline the overhead gate
//! (`obs_overhead` bench, ≤ 3 %) compares against. Counters still
//! count — they are one relaxed add and the pre-registry stats structs
//! always paid it. The flag defaults to **on**.

pub mod hist;
pub mod lock;
pub mod registry;
pub mod stage;

pub use hist::LogHistogram;
pub use lock::LockId;
pub use registry::{Counter, Gauge, Histogram, HistogramSummary, Registry, Snapshot};
pub use stage::{record_since, stage_clock, OpSpan, Stage};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global switch over the timed paths (histogram `time`,
/// `stage_clock`). Defaults to on.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable timing instrumentation process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether timing instrumentation is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Tests that flip the global flag hold this so they don't race each
/// other (the test harness runs them concurrently).
#[cfg(test)]
pub(crate) fn enabled_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(Default::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}
