//! Lock-wait profiling for the named locks in `docs/CONCURRENCY.md`.
//!
//! Each surviving global lock records its acquisition wait time into a
//! `lock_wait_<name>_ns` histogram, so a breakdown can say which lock a
//! thread count actually queues on. The instrumented sites wrap their
//! `lock()` calls with [`Histogram::time`] via handles resolved at
//! construction; this module only owns the naming.

/// The named locks from the `docs/CONCURRENCY.md` inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockId {
    /// Ordered index single-writer CoW root lock (`ordered.rs`).
    OrderedRoot,
    /// Merge engine hand-off mutex (`DpmNode::merge`).
    MergeEngine,
    /// Cluster reconfiguration lock (`KvsInner::reconfig_lock`).
    Reconfig,
    /// DPM segment-table write lock (`DpmInner::segments`).
    SegmentTable,
}

impl LockId {
    pub const ALL: [LockId; 4] = [
        LockId::OrderedRoot,
        LockId::MergeEngine,
        LockId::Reconfig,
        LockId::SegmentTable,
    ];

    /// Registry metric name (`lock_wait_<name>_ns`).
    pub fn metric_name(self) -> &'static str {
        match self {
            LockId::OrderedRoot => "lock_wait_ordered_root_ns",
            LockId::MergeEngine => "lock_wait_merge_engine_ns",
            LockId::Reconfig => "lock_wait_reconfig_ns",
            LockId::SegmentTable => "lock_wait_segment_table_ns",
        }
    }

    /// Human label for breakdown tables.
    pub fn label(self) -> &'static str {
        match self {
            LockId::OrderedRoot => "ordered-index CoW root",
            LockId::MergeEngine => "merge engine hand-off",
            LockId::Reconfig => "reconfig lock",
            LockId::SegmentTable => "segment-table write lock",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn lock_names_are_unique_and_prefixed() {
        let names: Vec<_> = LockId::ALL.iter().map(|l| l.metric_name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(n.starts_with("lock_wait_") && n.ends_with("_ns"));
        }
    }

    /// Provoke a known contended acquisition and assert the wait
    /// histogram saw it: one thread holds the lock for 20 ms while
    /// another's timed `lock()` blocks behind it.
    #[test]
    fn contended_acquisition_records_nonzero_wait() {
        let _serial = crate::enabled_test_lock();
        crate::set_enabled(true);
        let reg = Registry::new_shared();
        let wait = reg.lock_wait(LockId::OrderedRoot);
        let lock = Arc::new(Mutex::new(()));

        let guard = lock.lock();
        let waiter = {
            let lock = lock.clone();
            let wait = wait.clone();
            thread::spawn(move || {
                wait.time(|| {
                    let _g = lock.lock();
                })
            })
        };
        thread::sleep(Duration::from_millis(20));
        drop(guard);
        waiter.join().unwrap();

        let snap = reg.snapshot();
        let h = snap.histogram(LockId::OrderedRoot.metric_name()).unwrap();
        assert_eq!(h.count, 1);
        assert!(
            h.max_ns >= 10_000_000,
            "expected >= 10 ms recorded wait, got {} ns",
            h.max_ns
        );
    }
}
