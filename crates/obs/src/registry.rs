//! Sharded-atomic metrics registry.
//!
//! One `Registry` per `Kvs` instance holds every named metric. Handles
//! (`Counter`, `Gauge`, `Histogram`) are cheap clones of `Arc`s — the
//! intended pattern is to resolve a handle **once** at construction time
//! and record through it on the hot path. Recording is an uncontended
//! relaxed atomic add (counters/gauges) or an uncontended mutex over a
//! thread-sharded `LogHistogram`; cross-thread merging happens lazily at
//! [`Registry::snapshot`] time, never on the record path.
//!
//! Naming scheme (see `docs/OBSERVABILITY.md`):
//! `<subsystem>_<what>[_<unit>]`, e.g. `kn_busy_rejections`,
//! `stage_queue_wait_ns`, `lock_wait_ordered_root_ns`.

use crate::hist::LogHistogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of per-thread shards behind each counter and histogram.
/// Threads map onto shards by a monotone thread index modulo this, so
/// two threads only contend when the process has run more live threads
/// than shards — and even then the cost is a shared cache line, never a
/// lost update.
const SHARDS: usize = 8;

static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: usize = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

fn shard_index() -> usize {
    THREAD_INDEX.with(|i| *i) % SHARDS
}

/// One cache line per shard so neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotone event counter. `add` is a relaxed fetch-add on the calling
/// thread's shard; `value` sums the shards (each shard is monotone, so
/// concurrent snapshots are monotone too).
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    /// A counter not attached to any registry — for default-constructed
    /// components that may later be handed a registry-backed handle.
    pub fn detached() -> Self {
        Counter {
            shards: Arc::new(Default::default()),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// Point-in-time value (queue depths, live segment counts). Unsharded:
/// gauges are set, not hammered.
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    pub fn detached() -> Self {
        Gauge {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// Latency histogram sharded over per-thread `LogHistogram`s. The record
/// path takes the calling thread's shard lock — uncontended in steady
/// state, so one CAS pair — and snapshots merge the shards.
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<[Mutex<LogHistogram>; SHARDS]>,
}

impl Histogram {
    pub fn detached() -> Self {
        Histogram {
            shards: Arc::new(std::array::from_fn(|_| Mutex::new(LogHistogram::new()))),
        }
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.shards[shard_index()].lock().record(value);
    }

    /// Time `f` and record the elapsed nanoseconds — unless observability
    /// is globally disabled, in which case the clock reads are skipped
    /// entirely (this is the `obs_off` overhead baseline).
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if !crate::enabled() {
            return f();
        }
        let start = std::time::Instant::now();
        let out = f();
        self.record(start.elapsed().as_nanos() as u64);
        out
    }

    /// Merge all shards into one histogram.
    pub fn merged(&self) -> LogHistogram {
        let mut out = LogHistogram::new();
        for shard in self.shards.iter() {
            out.merge(&shard.lock());
        }
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.merged().count())
            .finish()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

type ExternalFn = Arc<dyn Fn() -> u64 + Send + Sync>;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    /// Counters owned elsewhere (e.g. the process-global epoch
    /// reclamation stats) polled at snapshot time.
    externals: BTreeMap<String, ExternalFn>,
}

/// The per-instance metric namespace. Registration is idempotent: two
/// `counter("x")` calls return handles over the same shards.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn new_shared() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    /// Get or register the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(Counter::detached)
            .clone()
    }

    /// Get or register the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(Gauge::detached)
            .clone()
    }

    /// Get or register the named histogram (values in nanoseconds by
    /// convention; put the unit in the name).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::detached)
            .clone()
    }

    /// Histogram for a request-lifecycle stage.
    pub fn stage(&self, stage: crate::Stage) -> Histogram {
        self.histogram(stage.metric_name())
    }

    /// Wait-time histogram for a named lock.
    pub fn lock_wait(&self, lock: crate::LockId) -> Histogram {
        self.histogram(lock.metric_name())
    }

    /// Bridge a counter owned outside the registry (polled on snapshot,
    /// reported alongside native counters). The closure must be monotone
    /// for deltas over it to make sense.
    pub fn register_external(&self, name: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.inner
            .lock()
            .externals
            .insert(name.to_string(), Arc::new(f));
    }

    /// Merge every metric into a point-in-time [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        // Clone the handles out so shard merging happens outside the
        // registry lock.
        let (counters, gauges, histograms, externals) = {
            let inner = self.inner.lock();
            (
                inner.counters.clone(),
                inner.gauges.clone(),
                inner.histograms.clone(),
                inner.externals.clone(),
            )
        };
        let mut snap = Snapshot::default();
        for (name, c) in &counters {
            snap.counters.push((name.clone(), c.value()));
        }
        for (name, f) in &externals {
            snap.counters.push((name.clone(), f()));
        }
        snap.counters.sort();
        for (name, g) in &gauges {
            snap.gauges.push((name.clone(), g.value()));
        }
        for (name, h) in &histograms {
            snap.histograms
                .push((name.clone(), HistogramSummary::of(&h.merged())));
        }
        snap
    }
}

/// Quantile summary of one merged histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
}

impl HistogramSummary {
    pub fn of(h: &LogHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.value_at_quantile(0.50),
            p90_ns: h.value_at_quantile(0.90),
            p99_ns: h.value_at_quantile(0.99),
            p999_ns: h.value_at_quantile(0.999),
            max_ns: h.max(),
        }
    }

    /// Approximate total time spent in this histogram — the dominance
    /// metric for "where did the time go" breakdowns.
    pub fn total_ns(&self) -> f64 {
        self.mean_ns * self.count as f64
    }
}

/// Point-in-time merge of a registry. Name lists are sorted; external
/// counters appear among `counters`.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Counter increase since `earlier` (saturating: a counter absent
    /// earlier counts from zero).
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        let now = self.counter(name).unwrap_or(0);
        let then = earlier.counter(name).unwrap_or(0);
        now.saturating_sub(then)
    }

    /// Prometheus text exposition format (counters and gauges as-is,
    /// histograms as summary quantiles plus `_count`/`_sum`).
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, s) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [
                ("0.5", s.p50_ns),
                ("0.9", s.p90_ns),
                ("0.99", s.p99_ns),
                ("0.999", s.p999_ns),
            ] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_count {}", s.count);
            let _ = writeln!(out, "{name}_sum {:.0}", s.total_ns());
        }
        out
    }

    /// JSON export — the shape `bench_summary` merges into
    /// `BENCH_RESULTS.json` when written as `metrics_snapshot.json`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{name}\": {{\"count\": {}, \"mean_ns\": {:.1}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                 \"max_ns\": {}}}",
                s.count, s.mean_ns, s.p50_ns, s.p90_ns, s.p99_ns, s.p999_ns, s.max_ns
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn counter_is_exact_across_threads() {
        let reg = Registry::new_shared();
        let c = reg.counter("hits");
        const THREADS: usize = 16;
        const PER_THREAD: u64 = 100_000;
        thread::scope(|s| {
            for _ in 0..THREADS {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), THREADS as u64 * PER_THREAD);
        assert_eq!(
            reg.snapshot().counter("hits"),
            Some(THREADS as u64 * PER_THREAD)
        );
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        let h1 = reg.histogram("h");
        let h2 = reg.histogram("h");
        h1.record(10);
        h2.record(20);
        assert_eq!(h1.merged().count(), 2);
    }

    #[test]
    fn snapshots_are_monotone_under_concurrent_writers() {
        let reg = Registry::new_shared();
        let c = reg.counter("events");
        let h = reg.histogram("lat_ns");
        let stop = Arc::new(AtomicBool::new(false));
        thread::scope(|s| {
            for t in 0..8 {
                let c = c.clone();
                let h = h.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        c.inc();
                        h.record(t * 1000 + i % 97);
                        i += 1;
                    }
                });
            }
            let mut last_count = 0u64;
            let mut last_hist = 0u64;
            for _ in 0..200 {
                let snap = reg.snapshot();
                let count = snap.counter("events").unwrap();
                let hist = snap.histogram("lat_ns").unwrap().count;
                assert!(count >= last_count, "counter went backwards");
                assert!(hist >= last_hist, "histogram count went backwards");
                last_count = count;
                last_hist = hist;
            }
            stop.store(true, Ordering::Relaxed);
        });
        // After all writers stop, the snapshot equals the handle sum —
        // shard merge loses nothing.
        let snap = reg.snapshot();
        assert_eq!(snap.counter("events"), Some(c.value()));
        assert_eq!(snap.histogram("lat_ns").unwrap().count, h.merged().count());
    }

    #[test]
    fn histogram_shard_merge_is_exact() {
        let reg = Registry::new_shared();
        let h = reg.histogram("h");
        thread::scope(|s| {
            for _ in 0..12 {
                let h = h.clone();
                s.spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v);
                    }
                });
            }
        });
        let merged = h.merged();
        assert_eq!(merged.count(), 12 * 10_000);
        assert_eq!(merged.min(), 0);
        // 9999 lands in a 1/64-wide bucket; the reported max is the
        // bucket's upper bound, never below the true max.
        assert!(merged.max() >= 9_999);
    }

    #[test]
    fn external_counters_fold_into_snapshots() {
        let reg = Registry::new();
        let source = Arc::new(AtomicU64::new(41));
        let s2 = source.clone();
        reg.register_external("ext_events", move || s2.load(Ordering::Relaxed));
        assert_eq!(reg.snapshot().counter("ext_events"), Some(41));
        source.store(50, Ordering::Relaxed);
        let earlier = reg.snapshot();
        source.store(62, Ordering::Relaxed);
        let later = reg.snapshot();
        assert_eq!(later.counter_delta(&earlier, "ext_events"), 12);
    }

    #[test]
    fn exports_mention_every_metric() {
        let reg = Registry::new();
        reg.counter("ops").add(7);
        reg.gauge("depth").set(3);
        reg.histogram("lat_ns").record(1_000);
        let snap = reg.snapshot();
        let prom = snap.prometheus_text();
        assert!(prom.contains("ops 7"));
        assert!(prom.contains("depth 3"));
        assert!(prom.contains("lat_ns_count 1"));
        let json = snap.to_json();
        assert!(json.contains("\"ops\": 7"));
        assert!(json.contains("\"depth\": 3"));
        assert!(json.contains("\"lat_ns\""));
        assert!(json.contains("\"count\": 1"));
    }
}
