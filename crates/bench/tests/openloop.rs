//! Regression tests for the open-loop driver's measurement honesty.
//!
//! The coordinated-omission test is the reason the driver exists: a
//! server that stalls once must show the stall in percentiles measured
//! from *scheduled arrival* (every operation queued behind the stall was
//! delayed, and a real open-loop client population would have felt it),
//! and must largely hide it in percentiles measured from *send time*
//! (only the one in-flight operation looks slow — the closed-loop lie).

use dinomo_bench::openloop::{run_open_loop, OpenLoopConfig, OpenLoopPlan};
use dinomo_workload::{arrival_schedule, ArrivalProcess, Operation};
use std::time::Duration;

/// Same seed ⇒ byte-identical schedule and op stream; different seed ⇒
/// a different schedule. (The unit tests cover the pieces; this pins the
/// end-to-end property the replayability story depends on.)
#[test]
fn open_loop_plans_are_deterministic_from_the_seed() {
    let cfg = OpenLoopConfig {
        total_ops: 4_000,
        ..OpenLoopConfig::default()
    };
    let a = OpenLoopPlan::new(cfg);
    let b = OpenLoopPlan::new(cfg);
    assert_eq!(a.arrivals_ns, b.arrivals_ns);
    assert_eq!(a.session_of, b.session_of);
    assert!((0..4_000).all(|i| a.op(i) == b.op(i)));
    assert_eq!(
        a.arrivals_ns,
        arrival_schedule(cfg.process, cfg.offered_rate, cfg.total_ops, cfg.seed),
        "the plan must replay the workload crate's schedule verbatim"
    );
    let c = OpenLoopPlan::new(OpenLoopConfig { seed: 1, ..cfg });
    assert_ne!(a.arrivals_ns, c.arrivals_ns);
}

/// A deliberately stalled executor must inflate p99 measured from
/// scheduled arrival and must NOT inflate p99 measured from send time.
#[test]
fn stalled_server_inflates_scheduled_p99_but_not_send_p99() {
    const RATE: f64 = 5_000.0;
    const OPS: u64 = 2_000;
    const STALL_AT: u64 = 500;
    const STALL: Duration = Duration::from_millis(50);

    // Fixed-rate arrivals and one worker: the op order is the schedule
    // order, so the stall lands at a known point with a known backlog.
    let plan = OpenLoopPlan::new(OpenLoopConfig {
        process: ArrivalProcess::FixedRate,
        offered_rate: RATE,
        total_ops: OPS,
        sessions: 100,
        workers: 1,
        ..OpenLoopConfig::default()
    });
    let report = run_open_loop(&plan, |_worker| {
        let mut issued = 0u64;
        move |_op: Operation| {
            issued += 1;
            if issued == STALL_AT {
                std::thread::sleep(STALL);
            }
        }
    });
    assert_eq!(report.ops, OPS);

    let sched = report.scheduled_summary();
    let send = report.send_summary();

    // The 50 ms stall at 5 kops/s queues ~250 arrivals (12.5 % of the
    // run) behind it with scheduled-arrival delays ramping up to ~50 ms,
    // so the honest p99 must sit deep inside the stall.
    assert!(
        sched.p99_ms >= 10.0,
        "scheduled-arrival p99 must feel the backlog: {sched:?}"
    );
    // Send-time measurement sees one slow op out of 2000 (0.05 %), far
    // under the 1 % tail: its p99 stays at no-op-executor latency.
    assert!(
        send.p99_ms <= 5.0,
        "send-time p99 should hide the stall: {send:?}"
    );
    assert!(
        sched.p99_ms >= 5.0 * send.p99_ms,
        "the two measurements must visibly diverge: scheduled {:.3} ms vs send {:.3} ms",
        sched.p99_ms,
        send.p99_ms
    );
    // Only the stalled op itself is slow from send time — it is the max.
    assert!(send.max_ms >= 45.0, "{send:?}");
    // SLO attainment from scheduled arrival sees the whole backlog.
    let attainment = report.slo_attainment(Duration::from_millis(10));
    assert!(
        (0.80..=0.995).contains(&attainment),
        "roughly the backlogged tail should miss a 10 ms SLO: {attainment}"
    );
}

/// Without a stall the two measurements agree — the divergence above is
/// the stall's doing, not a driver artifact.
#[test]
fn unstalled_server_keeps_both_measurements_close() {
    let plan = OpenLoopPlan::new(OpenLoopConfig {
        process: ArrivalProcess::FixedRate,
        offered_rate: 5_000.0,
        total_ops: 2_000,
        sessions: 100,
        workers: 1,
        ..OpenLoopConfig::default()
    });
    let report = run_open_loop(&plan, |_worker| {
        move |op: Operation| {
            std::hint::black_box(&op);
        }
    });
    let sched = report.scheduled_summary();
    assert!(
        sched.p99_ms < 10.0,
        "no stall, no backlog: scheduled p99 stays small: {sched:?}"
    );
    assert!(report.achieved_rate > 0.9 * report.offered_rate);
    assert!(report.slo_attainment(Duration::from_millis(10)) > 0.99);
}
