//! Open-loop, coordinated-omission-free load driver.
//!
//! Every other bench in this crate is **closed-loop**: N client threads
//! each wait for one request to finish before issuing the next. That
//! measures capacity well but lies about latency — when the server stalls,
//! a closed-loop client politely stops offering load, so the stall barely
//! appears in the recorded samples (coordinated omission), and "latency at
//! X clients" says nothing about latency at a given *offered* rate.
//!
//! This driver inverts the setup, the way the paper's latency-vs-load
//! figures (and YCSB's `-target` mode) demand:
//!
//! 1. An [`ArrivalProcess`] fixes the schedule of operation arrival times
//!    up front — Poisson or fixed-rate at a configured offered rate —
//!    independent of how the server behaves.
//! 2. Tens of thousands of simulated client *sessions* are multiplexed
//!    onto a small pool of worker threads. A session is a deterministic
//!    op stream (its own RNG seed over the shared key-popularity
//!    distribution), not a thread, so session count scales to
//!    paper-sized client populations without paper-sized thread counts.
//! 3. Each operation's latency is measured from its **scheduled arrival
//!    time**, not from when a worker finally got around to sending it. If
//!    the server stalls and a backlog forms, every queued op's measured
//!    latency grows by its time in the backlog — exactly what a real
//!    open-loop client population would experience. The send-time
//!    histogram is kept alongside as the "lying" baseline so the
//!    regression test can demonstrate the difference.
//!
//! Percentiles come from [`LogHistogram`] (`p50/p99/p999` at ≤1.6 %
//! relative error); see [`crate::hist`].

use crate::hist::LatencySummary;
use dinomo_core::LogHistogram;
use dinomo_workload::{
    arrival_schedule, key_for, session_seed, ArrivalProcess, KeyDistribution, Operation,
    ZipfianGenerator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Configuration for one open-loop run at one offered rate.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Arrival process drawn for the schedule.
    pub process: ArrivalProcess,
    /// Offered load in operations per second.
    pub offered_rate: f64,
    /// Total operations in the run.
    pub total_ops: u64,
    /// Simulated client sessions multiplexed onto the worker pool.
    pub sessions: u32,
    /// Worker threads actually issuing requests.
    pub workers: usize,
    /// Key-space size; keys are drawn from `distribution` over `0..num_keys`.
    pub num_keys: u64,
    /// Fraction of operations that are reads (the rest are updates).
    pub read_fraction: f64,
    /// Value length for update operations.
    pub value_len: usize,
    /// Key-popularity distribution shared by all sessions.
    pub distribution: KeyDistribution,
    /// Master seed: schedule, session assignment and every session's op
    /// stream derive from it, so a run is replayable byte-for-byte.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            process: ArrivalProcess::Poisson,
            offered_rate: 10_000.0,
            total_ops: 20_000,
            sessions: 20_000,
            workers: 8,
            num_keys: 2_000,
            read_fraction: 0.95,
            value_len: 128,
            distribution: KeyDistribution::MODERATE_SKEW,
            seed: 0xD1_40_40,
        }
    }
}

/// Key chooser shared (immutably) by all sessions. One CDF for the whole
/// run — per-session Zipfian tables at 8 bytes/key × tens of thousands of
/// sessions would dwarf the store under test.
enum KeyChooser {
    Uniform(u64),
    Zipfian(ZipfianGenerator),
}

impl KeyChooser {
    fn next(&self, rng: &mut StdRng) -> u64 {
        match self {
            KeyChooser::Uniform(n) => rng.gen_range(0..*n),
            KeyChooser::Zipfian(z) => z.next(rng),
        }
    }
}

/// The fully materialized, deterministic plan for one open-loop run:
/// every operation's scheduled arrival offset and owning session. A pure
/// function of the [`OpenLoopConfig`] — same config, byte-identical plan.
pub struct OpenLoopPlan {
    /// Scheduled arrival offsets in nanoseconds from run start.
    pub arrivals_ns: Vec<u64>,
    /// Owning session of each scheduled operation.
    pub session_of: Vec<u32>,
    chooser: KeyChooser,
    cfg: OpenLoopConfig,
}

impl OpenLoopPlan {
    /// Materialize the schedule and session assignment for `cfg`.
    pub fn new(cfg: OpenLoopConfig) -> Self {
        assert!(cfg.sessions > 0 && cfg.workers > 0 && cfg.num_keys > 0);
        let arrivals_ns = arrival_schedule(cfg.process, cfg.offered_rate, cfg.total_ops, cfg.seed);
        // Each arrival belongs to a uniformly chosen session, mimicking a
        // large population of independent thin clients.
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5E55_1044);
        let session_of = (0..cfg.total_ops)
            .map(|_| rng.gen_range(0..cfg.sessions))
            .collect();
        let chooser = match cfg.distribution {
            KeyDistribution::Uniform => KeyChooser::Uniform(cfg.num_keys),
            KeyDistribution::Zipfian { theta } => {
                KeyChooser::Zipfian(ZipfianGenerator::new(cfg.num_keys, theta, true))
            }
        };
        OpenLoopPlan {
            arrivals_ns,
            session_of,
            chooser,
            cfg,
        }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &OpenLoopConfig {
        &self.cfg
    }

    /// The `i`-th scheduled operation and its session. Deterministic and
    /// order-independent: the op derives from `(seed, session, i)` alone,
    /// so concurrent workers need no shared session state and a replay
    /// regenerates the identical stream.
    pub fn op(&self, i: usize) -> (u32, Operation) {
        let session = self.session_of[i];
        let mut rng =
            StdRng::seed_from_u64(session_seed(self.cfg.seed, session).wrapping_add(i as u64));
        let id = self.chooser.next(&mut rng);
        let key = key_for(id, 8);
        let op = if rng.gen_bool(self.cfg.read_fraction.clamp(0.0, 1.0)) {
            Operation::Read(key)
        } else {
            Operation::Update(key, vec![(id % 251) as u8; self.cfg.value_len])
        };
        (session, op)
    }
}

/// The measured outcome of one open-loop run.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Operations completed (always `total_ops`; the driver never drops).
    pub ops: u64,
    /// The configured offered rate, ops/second.
    pub offered_rate: f64,
    /// Completed throughput: `ops / elapsed`. Falls below `offered_rate`
    /// exactly when the system can no longer drain the schedule.
    pub achieved_rate: f64,
    /// Run start to last completion.
    pub elapsed: Duration,
    /// Latency from **scheduled arrival** to completion — the honest,
    /// coordinated-omission-free distribution (nanoseconds).
    pub scheduled: LogHistogram,
    /// Latency from actual send to completion — what a closed-loop bench
    /// would have reported (nanoseconds). Kept for comparison only.
    pub send: LogHistogram,
}

impl OpenLoopReport {
    /// Summary of the honest (scheduled-arrival) latency distribution.
    pub fn scheduled_summary(&self) -> LatencySummary {
        LatencySummary::from_nanos(&self.scheduled)
    }

    /// Summary of the send-time latency distribution.
    pub fn send_summary(&self) -> LatencySummary {
        LatencySummary::from_nanos(&self.send)
    }

    /// Fraction of operations whose scheduled-arrival latency was at or
    /// below `slo`.
    pub fn slo_attainment(&self, slo: Duration) -> f64 {
        if self.scheduled.count() == 0 {
            return 1.0;
        }
        self.scheduled.count_at_or_below(slo.as_nanos() as u64) as f64
            / self.scheduled.count() as f64
    }
}

/// Sleep until `target`, coarsely at first (the OS sleep is only
/// millisecond-faithful), then spin the final stretch so arrivals land on
/// schedule. Returns immediately if `target` is already past — a late
/// arrival executes at once and its backlog time lands in the
/// scheduled-arrival latency, which is the whole point.
fn wait_until(target: Instant) {
    const SPIN_SLACK: Duration = Duration::from_micros(200);
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let gap = target - now;
        if gap > SPIN_SLACK {
            std::thread::sleep(gap - SPIN_SLACK);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Execute `plan` against per-worker executors built by `make_executor`
/// (called once per worker on the caller's thread — build a `KvsClient`
/// there). Workers claim scheduled operations from a shared cursor, wait
/// for each op's arrival time, execute, and record both the
/// scheduled-arrival and send-time latency. Returns the merged report.
pub fn run_open_loop<F, E>(plan: &OpenLoopPlan, make_executor: F) -> OpenLoopReport
where
    F: Fn(usize) -> E,
    E: FnMut(Operation) + Send,
{
    let n = plan.arrivals_ns.len();
    let cursor = AtomicUsize::new(0);
    // A short lead so every worker is parked on the schedule before the
    // first arrival, rather than starting late and calling it queueing.
    let start = Instant::now() + Duration::from_millis(5);

    let mut executors: Vec<E> = (0..plan.cfg.workers).map(&make_executor).collect();

    let (scheduled, send, last_done) = std::thread::scope(|scope| {
        let handles: Vec<_> = executors
            .iter_mut()
            .map(|exec| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut sched_hist = LogHistogram::new();
                    let mut send_hist = LogHistogram::new();
                    let mut last_done = start;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let target = start + Duration::from_nanos(plan.arrivals_ns[i]);
                        wait_until(target);
                        let (_session, op) = plan.op(i);
                        let sent = Instant::now();
                        exec(op);
                        let done = Instant::now();
                        // `duration_since` saturates to zero, so a clock
                        // quirk can't panic the worker mid-run.
                        sched_hist.record(done.duration_since(target).as_nanos() as u64);
                        send_hist.record(done.duration_since(sent).as_nanos() as u64);
                        last_done = done;
                    }
                    (sched_hist, send_hist, last_done)
                })
            })
            .collect();
        let mut scheduled = LogHistogram::new();
        let mut send = LogHistogram::new();
        let mut last_done = start;
        for h in handles {
            let (s, t, d) = h.join().expect("open-loop worker panicked");
            scheduled.merge(&s);
            send.merge(&t);
            last_done = last_done.max(d);
        }
        (scheduled, send, last_done)
    });

    let elapsed = last_done.duration_since(start);
    OpenLoopReport {
        ops: n as u64,
        offered_rate: plan.cfg.offered_rate,
        achieved_rate: if elapsed.is_zero() {
            0.0
        } else {
            n as f64 / elapsed.as_secs_f64()
        },
        elapsed,
        scheduled,
        send,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> OpenLoopConfig {
        OpenLoopConfig {
            offered_rate: 50_000.0,
            total_ops: 5_000,
            sessions: 1_000,
            workers: 4,
            ..OpenLoopConfig::default()
        }
    }

    #[test]
    fn plans_are_byte_identical_for_the_same_seed() {
        let a = OpenLoopPlan::new(small_cfg());
        let b = OpenLoopPlan::new(small_cfg());
        assert_eq!(a.arrivals_ns, b.arrivals_ns);
        assert_eq!(a.session_of, b.session_of);
        for i in (0..5_000).step_by(97) {
            assert_eq!(a.op(i), b.op(i));
        }
        let c = OpenLoopPlan::new(OpenLoopConfig {
            seed: 99,
            ..small_cfg()
        });
        assert_ne!(a.arrivals_ns, c.arrivals_ns);
    }

    #[test]
    fn ops_follow_the_configured_mix_and_key_space() {
        let plan = OpenLoopPlan::new(small_cfg());
        let mut reads = 0usize;
        for i in 0..5_000 {
            let (session, op) = plan.op(i);
            assert!(session < 1_000);
            match op {
                Operation::Read(_) => reads += 1,
                Operation::Update(_, v) => assert_eq!(v.len(), 128),
                other => panic!("unexpected op {other:?}"),
            }
        }
        let frac = reads as f64 / 5_000.0;
        assert!((0.92..=0.98).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn fast_executor_achieves_the_offered_rate() {
        let plan = OpenLoopPlan::new(small_cfg());
        let report = run_open_loop(&plan, |_worker| {
            move |op: Operation| {
                std::hint::black_box(&op);
            }
        });
        assert_eq!(report.ops, 5_000);
        assert_eq!(report.scheduled.count(), 5_000);
        assert_eq!(report.send.count(), 5_000);
        assert!(
            report.achieved_rate > 0.9 * report.offered_rate,
            "achieved {} of offered {}",
            report.achieved_rate,
            report.offered_rate
        );
        // A no-op executor has no backlog: even the honest histogram
        // stays well under a millisecond at p50.
        assert!(report.scheduled_summary().p50_ms < 1.0);
        assert!(report.slo_attainment(Duration::from_millis(100)) > 0.99);
    }
}
