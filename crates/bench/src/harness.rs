//! Shared harness utilities: scaled parameters, the calibrated cost model,
//! and the measurement routine behind Figure 5 / Table 6.

use dinomo_clover::{CloverConfig, CloverKvs};
use dinomo_core::{Kvs, KvsConfig, Variant};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_simnet::{ClusterCostInputs, CostModel, FabricConfig, ThroughputModel};
use dinomo_workload::{KeyDistribution, Operation, WorkloadConfig, WorkloadGenerator, WorkloadMix};
use serde::Serialize;
use std::path::PathBuf;

/// Experiment scale factor from `DINOMO_SCALE` (default 1.0).
///
/// A malformed value is **not** silently ignored: a typo'd CI variable
/// would otherwise quietly benchmark the wrong scale and the perf
/// trajectory would compare apples to oranges. Interactive runs get a
/// loud stderr warning and the 1.0 default; under `CI=1` it panics so
/// the job fails instead.
pub fn scale() -> f64 {
    let raw = match std::env::var("DINOMO_SCALE") {
        Ok(raw) => raw,
        Err(_) => return 1.0,
    };
    match parse_scale(&raw) {
        Ok(scale) => scale,
        Err(why) => {
            let in_ci = std::env::var("CI").is_ok_and(|v| v == "1" || v == "true");
            if in_ci {
                panic!("DINOMO_SCALE={raw:?} is invalid ({why}); refusing to bench at a default scale under CI");
            }
            eprintln!(
                "WARNING: DINOMO_SCALE={raw:?} is invalid ({why}); falling back to scale 1.0"
            );
            1.0
        }
    }
}

/// Parse a `DINOMO_SCALE` value. Split out of [`scale`] so the
/// validation is unit-testable without mutating the process environment
/// (concurrent `set_var` during tests is UB on glibc).
pub fn parse_scale(raw: &str) -> Result<f64, String> {
    let scale: f64 = raw
        .trim()
        .parse()
        .map_err(|e| format!("not a number: {e}"))?;
    if !scale.is_finite() || scale <= 0.0 {
        return Err(format!(
            "scale must be a finite positive number, got {scale}"
        ));
    }
    Ok(scale)
}

/// The shared artifact directory, `<workspace>/target/bench-results`,
/// anchored at the workspace root so figure binaries (run from the repo
/// root) and Criterion benches (run with the package directory as their
/// working directory) agree on one location.
pub fn bench_results_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/bench-results"
    ))
}

/// Write a JSON artifact to `target/bench-results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = bench_results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_vec_pretty(value) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Which system a measurement point describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SystemKind {
    /// Full Dinomo.
    Dinomo,
    /// Dinomo with a shortcut-only cache.
    DinomoS,
    /// Shared-nothing Dinomo (AsymNVM stand-in).
    DinomoN,
    /// The Clover baseline.
    Clover,
}

impl SystemKind {
    /// All four systems, in the paper's plotting order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Dinomo,
        SystemKind::DinomoN,
        SystemKind::DinomoS,
        SystemKind::Clover,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Dinomo => "dinomo",
            SystemKind::DinomoS => "dinomo-s",
            SystemKind::DinomoN => "dinomo-n",
            SystemKind::Clover => "clover",
        }
    }
}

/// The calibrated cost model used to convert measured per-operation round
/// trips and bytes into the paper-scale throughput curves.
///
/// Calibration (documented in EXPERIMENTS.md): 25 µs of KN CPU per request at
/// saturation (which reproduces the paper's ~0.3 Mops/s single-KN Dinomo
/// throughput with 8 worker threads), 1 µs of CPU per issued verb, and an
/// effective DPM-side port bandwidth of 3.5 GB/s (the paper's FDR link
/// delivers 56 Gbit/s raw, but small-message RDMA reads from one server
/// saturate well below line rate).
pub fn calibrated_cost_model() -> CostModel {
    CostModel {
        fabric: FabricConfig {
            dpm_bandwidth_bytes_per_sec: 3_500_000_000,
            ..FabricConfig::default()
        },
        kn_base_cpu_ns: 25_000,
        kn_verb_cpu_ns: 1_000,
        miss_extra_cpu_ns: 3_000,
    }
}

/// Everything measured (and modeled) for one (system, workload, KN-count)
/// configuration — one cell of Figure 5 plus the matching Table 6 columns.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredPoint {
    /// System under test.
    pub system: SystemKind,
    /// Workload mix name.
    pub mix: &'static str,
    /// Number of KVS nodes.
    pub num_kns: usize,
    /// Measured cache hit ratio (value + shortcut hits).
    pub cache_hit_ratio: f64,
    /// Measured fraction of lookups served from cached values.
    pub value_hit_ratio: f64,
    /// Measured network round trips per operation.
    pub rts_per_op: f64,
    /// Measured bytes moved over the network per operation.
    pub bytes_per_op: f64,
    /// Measured metadata-server RPCs per operation (Clover only, else 0).
    pub metadata_rpcs_per_op: f64,
    /// Modeled cluster throughput in operations/second.
    pub modeled_throughput: f64,
}

/// Parameters of a Figure 5 style measurement, already scaled.
#[derive(Debug, Clone, Copy)]
pub struct MeasureParams {
    /// Number of keys loaded before measurement.
    pub num_keys: u64,
    /// Value size in bytes.
    pub value_len: usize,
    /// Operations executed in the measurement phase.
    pub ops: u64,
    /// Worker threads per KVS node.
    pub threads_per_kn: usize,
    /// Cache bytes per KVS node.
    pub cache_bytes_per_kn: usize,
    /// Key-popularity skew.
    pub distribution: KeyDistribution,
}

impl MeasureParams {
    /// The scaled-down default mirroring the paper's §5.2 setup shape: the
    /// aggregate cache at 16 KNs covers ~50 % of the loaded dataset.
    pub fn scaled(scale: f64) -> Self {
        let num_keys = ((12_000.0 * scale) as u64).max(2_000);
        let value_len = 1024;
        let dataset_bytes = num_keys as usize * value_len;
        MeasureParams {
            num_keys,
            value_len,
            ops: ((20_000.0 * scale) as u64).max(4_000),
            threads_per_kn: 8,
            cache_bytes_per_kn: (dataset_bytes / 24).max(96 << 10),
            distribution: KeyDistribution::MODERATE_SKEW,
        }
    }
}

fn dpm_config_for(params: &MeasureParams, num_kns: usize) -> DpmConfig {
    let entry = (params.value_len as u64 + 64).next_multiple_of(8);
    let segment_bytes: u64 = 256 << 10;
    // Leave room for the load phase, the update/insert churn, and one open
    // log segment per KN shard (plus slack for partially-filled segments).
    let capacity = (params.num_keys + params.ops) * entry * 3
        + num_kns as u64 * params.threads_per_kn as u64 * segment_bytes * 4
        + (64 << 20);
    DpmConfig {
        pool: PmemConfig::with_capacity(capacity),
        segment_bytes,
        flush_batch_bytes: 32 << 10,
        merge_threads: 4,
        unmerged_segment_threshold: 2,
        index: PclhtConfig::for_capacity((params.num_keys + params.ops) as usize),
        inject_media_delay: false,
        gc: dinomo_dpm::GcConfig::default(),
    }
}

/// Run one (system, workload, KN-count) configuration on the real data
/// structures and return its measured/modeled point.
pub fn measure_point(
    system: SystemKind,
    num_kns: usize,
    mix: WorkloadMix,
    params: &MeasureParams,
) -> MeasuredPoint {
    let workload = WorkloadConfig {
        num_keys: params.num_keys,
        key_len: 8,
        value_len: params.value_len,
        mix,
        distribution: params.distribution,
        seed: 0xD1_40,
        max_scan_len: 16,
    };
    match system {
        SystemKind::Clover => measure_clover(num_kns, mix, params, workload),
        _ => measure_dinomo(system, num_kns, mix, params, workload),
    }
}

fn run_ops<E>(mut execute: E, workload: WorkloadConfig, ops: u64)
where
    E: FnMut(&Operation),
{
    let mut generator = WorkloadGenerator::new(workload);
    for _ in 0..ops {
        let op = generator.next_op();
        execute(&op);
    }
}

fn load<E>(mut execute: E, workload: WorkloadConfig)
where
    E: FnMut(&[u8], &[u8]),
{
    let generator = WorkloadGenerator::new(workload);
    for (k, v) in generator.load_phase() {
        execute(&k, &v);
    }
}

fn measure_dinomo(
    system: SystemKind,
    num_kns: usize,
    mix: WorkloadMix,
    params: &MeasureParams,
    workload: WorkloadConfig,
) -> MeasuredPoint {
    let variant = match system {
        SystemKind::Dinomo => Variant::Dinomo,
        SystemKind::DinomoS => Variant::DinomoS,
        SystemKind::DinomoN => Variant::DinomoN,
        SystemKind::Clover => unreachable!(),
    };
    let config = KvsConfig {
        variant,
        initial_kns: num_kns,
        threads_per_kn: params.threads_per_kn,
        cache_bytes_per_kn: params.cache_bytes_per_kn,
        cache_kind: None,
        write_batch_ops: 8,
        dpm: dpm_config_for(params, num_kns),
        fabric: FabricConfig::default(),
        ring_vnodes: 64,
        executor_queue_depth: 64,
        executor_min_sub_batch: 8,
    };
    let kvs = Kvs::new(config).expect("building the Dinomo cluster failed");
    let client = kvs.client();
    load(
        |k, v| client.insert(k, v).expect("load insert failed"),
        workload,
    );
    let _ = kvs.quiesce();
    let baseline = kvs.stats();

    run_ops(
        |op| {
            let _ = match op {
                Operation::Read(k) => client.lookup(k).map(|_| ()),
                Operation::Update(k, v) | Operation::Insert(k, v) => client.update(k, v),
                Operation::Delete(k) => client.delete(k),
                Operation::Scan(start, n) => client.scan(start, *n).map(|_| ()),
            };
        },
        workload,
        params.ops,
    );
    let after = kvs.stats();
    let delta = dinomo_core::KvsStats {
        kns: after
            .kns
            .iter()
            .map(|kn| {
                let before = baseline
                    .kns
                    .iter()
                    .find(|b| b.id == kn.id)
                    .copied()
                    .unwrap_or_default();
                kn.since(&before)
            })
            .collect(),
        ..after.clone()
    };
    finish_point(system, num_kns, mix, params, &delta, 0.0)
}

fn measure_clover(
    num_kns: usize,
    mix: WorkloadMix,
    params: &MeasureParams,
    workload: WorkloadConfig,
) -> MeasuredPoint {
    let entry = (params.value_len as u64 + 64).next_multiple_of(8);
    let capacity = (params.num_keys + params.ops) * entry * 4 + (64 << 20);
    let config = CloverConfig {
        initial_kns: num_kns,
        threads_per_kn: params.threads_per_kn,
        cache_bytes_per_kn: params.cache_bytes_per_kn,
        pool: PmemConfig::with_capacity(capacity),
        fabric: FabricConfig::default(),
        ..CloverConfig::default()
    };
    let kvs = CloverKvs::new(config).expect("building the Clover cluster failed");
    let client = kvs.client();
    load(
        |k, v| client.insert(k, v).expect("load insert failed"),
        workload,
    );
    kvs.run_gc();
    let baseline = kvs.stats();
    let rpcs_before = kvs.metadata_server().rpcs_served();

    let mut since_gc = 0u64;
    run_ops(
        |op| {
            let _ = match op {
                Operation::Read(k) => client.lookup(k).map(|_| ()),
                Operation::Update(k, v) | Operation::Insert(k, v) => client.update(k, v),
                Operation::Delete(k) => client.delete(k),
                // Clover is point-op-only; scans degrade to a read of the
                // start key (scan benchmarks target Dinomo only).
                Operation::Scan(start, _) => client.lookup(start).map(|_| ()),
            };
            since_gc += 1;
            if since_gc.is_multiple_of(2_000) {
                // The metadata server's GC thread compacts chains
                // periodically, as in the real system.
                kvs.run_gc();
            }
        },
        workload,
        params.ops,
    );
    let after = kvs.stats();
    let delta = dinomo_core::KvsStats {
        kns: after
            .kns
            .iter()
            .map(|kn| {
                let before = baseline
                    .kns
                    .iter()
                    .find(|b| b.id == kn.id)
                    .copied()
                    .unwrap_or_default();
                kn.since(&before)
            })
            .collect(),
        ..after.clone()
    };
    let rpcs = kvs.metadata_server().rpcs_served() - rpcs_before;
    let rpcs_per_op = rpcs as f64 / params.ops.max(1) as f64;
    finish_point(
        SystemKind::Clover,
        num_kns,
        mix,
        params,
        &delta,
        rpcs_per_op,
    )
}

fn finish_point(
    system: SystemKind,
    num_kns: usize,
    mix: WorkloadMix,
    params: &MeasureParams,
    delta: &dinomo_core::KvsStats,
    metadata_rpcs_per_op: f64,
) -> MeasuredPoint {
    let model = calibrated_cost_model();
    let miss_fraction = 1.0 - delta.cache_hit_ratio();
    let inputs = ClusterCostInputs {
        num_kns,
        threads_per_kn: params.threads_per_kn,
        rts_per_op: delta.rts_per_op(),
        remote_bytes_per_op: delta.bytes_per_op(),
        miss_fraction,
        write_fraction: mix.write_fraction(),
        // Calibrated from the Figure 4 experiment: ~1.5 Mops/s of merge
        // throughput per DPM processor thread on the DRAM profile.
        dpm_merge_capacity_ops: 4.0 * 1_500_000.0,
        metadata_rpcs_per_op,
        metadata_server_capacity_rpcs: if metadata_rpcs_per_op > 0.0 {
            CloverConfig::default().metadata_capacity_rpcs()
        } else {
            0.0
        },
    };
    let breakdown = ThroughputModel::cluster_throughput(&model, &inputs);
    MeasuredPoint {
        system,
        mix: mix.name,
        num_kns,
        cache_hit_ratio: delta.cache_hit_ratio(),
        value_hit_ratio: delta.value_hit_ratio(),
        rts_per_op: delta.rts_per_op(),
        bytes_per_op: delta.bytes_per_op(),
        metadata_rpcs_per_op,
        modeled_throughput: breakdown.ops_per_sec,
    }
}

// ------------------------------------------------------------ batched API

/// One point of the batched-vs-per-key amortization measurement: how much
/// cheaper an operation gets when submitted through `KvsClient::execute` in
/// batches of `batch_size` instead of as individual per-key calls.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BatchPoint {
    /// Operations per `execute` call.
    pub batch_size: usize,
    /// Measured nanoseconds per op for the per-key loop.
    pub per_key_ns_per_op: f64,
    /// Measured nanoseconds per op for the batched path.
    pub batched_ns_per_op: f64,
    /// `per_key / batched` — how much the owner-grouped batch amortizes
    /// routing and shard-lock overhead.
    pub speedup: f64,
}

/// Build the self-contained cluster both batched-vs-per-key measurements
/// use (`measure_batch_amortization` here and the `batch_bench` Criterion
/// bench): 4 KNs × 2 threads, preloaded with `num_keys` 128-byte values
/// and cache-warmed so the measurement isolates the request path (routing,
/// node lookup, shard locking) rather than DPM misses.
pub fn batch_measurement_cluster(num_keys: u64) -> Kvs {
    use dinomo_workload::key_for;

    let kvs = Kvs::builder()
        .initial_kns(4)
        .threads_per_kn(2)
        .cache_bytes_per_kn(8 << 20)
        .write_batch_ops(8)
        // This measurement isolates the *request-path* amortization of
        // batching (routing, node lookup, shard locking, flush batching)
        // on all-cache-hit reads, where a worker handoff can only add
        // noise; the executor's own win is measured by `kn_scaling`.
        .executor_queue_depth(0)
        .dpm(DpmConfig {
            pool: PmemConfig::with_capacity(512 << 20),
            segment_bytes: 2 << 20,
            merge_threads: 2,
            index: PclhtConfig::for_capacity(num_keys as usize * 2),
            ..DpmConfig::default()
        })
        .build()
        .expect("building the cluster failed");
    let client = kvs.client();
    for i in 0..num_keys {
        client.insert(&key_for(i, 8), &[1u8; 128]).unwrap();
    }
    kvs.quiesce().unwrap();
    for i in 0..num_keys {
        client.lookup(&key_for(i, 8)).unwrap();
    }
    kvs
}

/// One timed round of the batched-vs-per-key read comparison over a shared
/// stride-31 scan (the stride spreads consecutive ops across owners, the
/// worst case for grouping): returns `(per_key_ns_per_op,
/// batched_ns_per_op)`. Both sides produce every result; the batched side
/// asserts its replies succeeded so a failing batch cannot masquerade as a
/// fast one.
pub fn measure_batch_round(
    client: &dinomo_core::KvsClient,
    num_keys: u64,
    batch_size: usize,
    ops: u64,
) -> (f64, f64) {
    use dinomo_core::{Op, Reply};
    use dinomo_workload::key_for;
    use std::time::Instant;

    let per_key_start = Instant::now();
    let mut key = 0u64;
    let mut remaining = ops;
    while remaining > 0 {
        let n = batch_size.min(remaining as usize);
        let results: Vec<Option<Vec<u8>>> = (0..n)
            .map(|_| {
                key = (key + 31) % num_keys;
                client.lookup(&key_for(key, 8)).unwrap()
            })
            .collect();
        std::hint::black_box(results);
        remaining -= n as u64;
    }
    let per_key_ns = per_key_start.elapsed().as_nanos() as f64 / ops.max(1) as f64;

    let batched_start = Instant::now();
    let mut key = 0u64;
    let mut remaining = ops;
    while remaining > 0 {
        let n = batch_size.min(remaining as usize);
        let batch: Vec<Op> = (0..n)
            .map(|_| {
                key = (key + 31) % num_keys;
                Op::lookup(key_for(key, 8))
            })
            .collect();
        let replies = client.execute(batch);
        assert!(replies.iter().all(Reply::is_ok));
        std::hint::black_box(replies);
        remaining -= n as u64;
    }
    let batched_ns = batched_start.elapsed().as_nanos() as f64 / ops.max(1) as f64;

    (per_key_ns, batched_ns)
}

/// Measure per-key vs batched read throughput on a self-contained, warmed
/// cluster — the harness-level (one-shot, own-cluster) counterpart of the
/// `batch_bench` Criterion bench, for figure binaries and tests. `ops` is
/// the total operation count per side. For noise-robust comparisons on
/// shared hosts, prefer several calls and compare medians, as
/// `batch_bench` does with its interleaved rounds.
pub fn measure_batch_amortization(batch_size: usize, num_keys: u64, ops: u64) -> BatchPoint {
    let kvs = batch_measurement_cluster(num_keys);
    let client = kvs.client();
    let (per_key_ns, batched_ns) = measure_batch_round(&client, num_keys, batch_size, ops);
    BatchPoint {
        batch_size,
        per_key_ns_per_op: per_key_ns,
        batched_ns_per_op: batched_ns,
        speedup: per_key_ns / batched_ns.max(1.0),
    }
}

// ------------------------------------------------------ bench summaries

/// One named measurement of a bench run (e.g. a median throughput).
#[derive(Debug, Clone, Serialize)]
pub struct BenchMetric {
    /// Metric name, e.g. `"speedup_at_4_workers"`.
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// The machine-readable summary a bench writes to
/// `target/bench-results/<bench>.json`; `dinomo-bench`'s `bench_summary`
/// binary merges all of them into `BENCH_RESULTS.json` so CI can track the
/// perf trajectory as a build artifact instead of scrolling past log
/// output.
#[derive(Debug, Clone, Serialize)]
pub struct BenchRecord {
    /// Bench name (the artifact's file stem).
    pub bench: String,
    /// The bench's median measurements.
    pub metrics: Vec<BenchMetric>,
}

/// Write a bench's median measurements to
/// `target/bench-results/<bench>.json`.
pub fn write_bench_record(bench: &str, metrics: &[(&str, f64)]) {
    let record = BenchRecord {
        bench: bench.to_string(),
        metrics: metrics
            .iter()
            .map(|(name, value)| BenchMetric {
                name: (*name).to_string(),
                value: *value,
            })
            .collect(),
    };
    write_json(bench, &record);
}

// ------------------------------------------------------- executor scaling

/// Build the single-KN cluster the `kn_scaling` bench measures: `workers`
/// shards, a cache-less read path (every lookup walks the remote index),
/// and a **sleeping** fabric-delay mode, so each one-sided read parks the
/// executing thread instead of burning CPU — concurrent shard workers
/// overlap their fabric waits (as real KN threads overlap RDMA
/// completions), which is exactly the parallelism the executor exists to
/// harvest. `executor = false` disables the worker pool
/// (`executor_queue_depth = 0`): the inline, caller-thread baseline.
pub fn kn_scaling_cluster(workers: usize, executor: bool, num_keys: u64) -> Kvs {
    use dinomo_cache::CacheKind;
    use dinomo_simnet::DelayMode;
    use dinomo_workload::key_for;

    let kvs = Kvs::builder()
        .initial_kns(1)
        .threads_per_kn(workers)
        .cache_kind(CacheKind::None)
        .cache_bytes_per_kn(1 << 20)
        .write_batch_ops(8)
        .executor_queue_depth(if executor { 64 } else { 0 })
        .fabric(FabricConfig {
            delay: DelayMode::sleeping(),
            ..FabricConfig::default()
        })
        .dpm(DpmConfig {
            pool: PmemConfig::with_capacity(256 << 20),
            segment_bytes: 1 << 20,
            merge_threads: 2,
            index: PclhtConfig::for_capacity(num_keys as usize * 2),
            ..DpmConfig::default()
        })
        .build()
        .expect("building the kn_scaling cluster failed");
    let client = kvs.client();
    let pairs: Vec<_> = (0..num_keys)
        .map(|i| (key_for(i, 8), vec![1u8; 128]))
        .collect();
    for chunk in pairs.chunks(256) {
        client.multi_put(chunk.iter().map(|(k, v)| (k.clone(), v.clone())));
    }
    kvs.quiesce().unwrap();
    kvs
}

/// One timed round of the executor-scaling measurement: issue `batches`
/// batched lookups of `batch` strided keys each from a single client
/// thread and return the aggregate throughput in ops/second. Replies are
/// asserted `Ok` so a failing batch cannot masquerade as a fast one.
pub fn measure_kn_batch_throughput(
    client: &dinomo_core::KvsClient,
    num_keys: u64,
    batch: usize,
    batches: u64,
) -> f64 {
    use dinomo_core::{Op, Reply};
    use dinomo_workload::key_for;
    use std::time::Instant;

    let mut key = 0u64;
    let start = Instant::now();
    for _ in 0..batches {
        let ops: Vec<Op> = (0..batch)
            .map(|_| {
                key = (key + 31) % num_keys;
                Op::lookup(key_for(key, 8))
            })
            .collect();
        let replies = client.execute(ops);
        assert!(replies.iter().all(Reply::is_ok));
        std::hint::black_box(replies);
    }
    (batches * batch as u64) as f64 / start.elapsed().as_secs_f64()
}

/// Median of a set of measurements (sorts a copy). Total over any input:
/// NaN samples (a division by a zero elapsed time upstream) are dropped
/// rather than poisoning the comparator, even-length inputs return the
/// midpoint of the two middle elements rather than the upper one, and an
/// empty set returns 0.0 with a stderr warning instead of indexing out of
/// bounds.
pub fn median(samples: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|s| !s.is_nan()).collect();
    if sorted.len() < samples.len() {
        eprintln!(
            "WARNING: median() dropped {} NaN sample(s) of {}",
            samples.len() - sorted.len(),
            samples.len()
        );
    }
    if sorted.is_empty() {
        eprintln!("WARNING: median() of an empty sample set; reporting 0.0");
        return 0.0;
    }
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

// ---------------------------------------------- whole-system saturation

/// Build the cluster the `saturation_bench` drives: 4 KVS nodes × 4 shard
/// workers with the batched executor on, cache-less reads (every op pays
/// its fabric round trips), **sleeping** fabric delays so client threads
/// overlap their waits the way real KN workers overlap RDMA completions
/// (and so thread scaling is observable even on a single-core host), the
/// aggressive background compactor live, and `replicated` hot keys
/// selectively replicated so the shared-path indirection-cell machinery
/// runs under the measured load. What the thread sweep then exposes is
/// exactly the store's residual serialization: any global lock on the
/// read-validation, cell-swing or reclamation paths shows up as a flat
/// throughput curve.
pub fn saturation_cluster(num_keys: u64, replicated: u64) -> Kvs {
    use dinomo_cache::CacheKind;
    use dinomo_dpm::GcConfig;
    use dinomo_simnet::DelayMode;
    use dinomo_workload::key_for;

    let kvs = Kvs::builder()
        .initial_kns(4)
        .threads_per_kn(4)
        .cache_kind(CacheKind::None)
        .cache_bytes_per_kn(1 << 20)
        .write_batch_ops(8)
        .executor_queue_depth(64)
        .fabric(FabricConfig {
            delay: DelayMode::sleeping(),
            ..FabricConfig::default()
        })
        .dpm(DpmConfig {
            // Aggressive background compaction must ride inside the
            // DpmConfig literal: a later `.dpm(..)` builder call replaces
            // the whole DPM config, including any earlier `.gc(..)`.
            gc: GcConfig::aggressive(),
            pool: PmemConfig::with_capacity(256 << 20),
            // Small segments so the measured overwrite stream seals (and
            // the aggressive compactor reclaims) segments *during* the
            // sweep — the bench must catch collector-vs-foreground
            // serialization, not run against an idle cleaner.
            segment_bytes: 128 << 10,
            merge_threads: 2,
            index: PclhtConfig::for_capacity(num_keys as usize * 2),
            ..DpmConfig::default()
        })
        .build()
        .expect("building the saturation cluster failed");
    let client = kvs.client();
    let pairs: Vec<_> = (0..num_keys)
        .map(|i| (key_for(i, 8), vec![1u8; 128]))
        .collect();
    for chunk in pairs.chunks(256) {
        client.multi_put(chunk.iter().map(|(k, v)| (k.clone(), v.clone())));
    }
    kvs.quiesce().unwrap();
    for i in 0..replicated.min(num_keys) {
        kvs.replicate_key(&key_for(i, 8), 2)
            .expect("replicating a hot key failed");
    }
    kvs
}

/// One closed-loop saturation round: `threads` client threads each issue
/// `ops_per_thread` per-op requests (1 overwrite per 4 lookups, so the
/// compactor has dead bytes to clean throughout) against strided key
/// streams that all pass through the replicated hot keys. Returns the
/// aggregate throughput in ops/second. `Busy` backpressure is retried —
/// a rejected op must not masquerade as a completed one.
pub fn measure_saturation_throughput(
    kvs: &Kvs,
    threads: usize,
    num_keys: u64,
    ops_per_thread: u64,
) -> f64 {
    use dinomo_workload::key_for;
    use std::time::Instant;

    let start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let client = kvs.client();
                scope.spawn(move || {
                    let mut key = (t as u64).wrapping_mul(7919) % num_keys;
                    for i in 0..ops_per_thread {
                        key = (key + 31) % num_keys;
                        let bytes = key_for(key, 8);
                        if i % 4 == 3 {
                            let mut tries = 0;
                            while client.update(&bytes, &[2u8; 128]).is_err() {
                                tries += 1;
                                assert!(tries < 1000, "update of key {key} kept failing");
                            }
                        } else {
                            let mut tries = 0;
                            while client.lookup(&bytes).is_err() {
                                tries += 1;
                                assert!(tries < 1000, "lookup of key {key} kept failing");
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    (threads as u64 * ops_per_thread) as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_amortization_point_is_sane() {
        let point = measure_batch_amortization(32, 2_000, 4_000);
        assert_eq!(point.batch_size, 32);
        assert!(point.per_key_ns_per_op > 0.0);
        assert!(point.batched_ns_per_op > 0.0);
        assert!(point.speedup > 0.0);
    }

    #[test]
    fn scaled_params_shrink_with_scale() {
        let small = MeasureParams::scaled(0.1);
        let big = MeasureParams::scaled(1.0);
        assert!(small.num_keys <= big.num_keys);
        assert!(small.cache_bytes_per_kn <= big.cache_bytes_per_kn);
    }

    #[test]
    fn measure_point_produces_sane_numbers_for_each_system() {
        let params = MeasureParams {
            num_keys: 400,
            value_len: 256,
            ops: 600,
            threads_per_kn: 2,
            cache_bytes_per_kn: 32 << 10,
            distribution: KeyDistribution::MODERATE_SKEW,
        };
        for system in SystemKind::ALL {
            let p = measure_point(system, 2, WorkloadMix::READ_MOSTLY_UPDATE, &params);
            assert!(p.modeled_throughput > 0.0, "{:?}", p);
            assert!(p.rts_per_op >= 0.0 && p.rts_per_op < 50.0, "{:?}", p);
            assert!(p.cache_hit_ratio >= 0.0 && p.cache_hit_ratio <= 1.0);
        }
    }

    #[test]
    fn dinomo_beats_clover_at_scale_in_the_model() {
        let params = MeasureParams {
            num_keys: 600,
            value_len: 512,
            ops: 1_200,
            threads_per_kn: 4,
            cache_bytes_per_kn: 24 << 10,
            distribution: KeyDistribution::MODERATE_SKEW,
        };
        let dinomo = measure_point(
            SystemKind::Dinomo,
            8,
            WorkloadMix::WRITE_HEAVY_UPDATE,
            &params,
        );
        let clover = measure_point(
            SystemKind::Clover,
            8,
            WorkloadMix::WRITE_HEAVY_UPDATE,
            &params,
        );
        assert!(
            dinomo.modeled_throughput > clover.modeled_throughput,
            "dinomo {:?} vs clover {:?}",
            dinomo,
            clover
        );
        assert!(dinomo.rts_per_op < clover.rts_per_op);
    }

    #[test]
    fn median_is_total_over_empty_nan_and_even_inputs() {
        // Empty: 0.0 (with a warning), not an out-of-bounds panic.
        assert_eq!(median(&[]), 0.0);
        // NaN: filtered, not a comparator panic.
        assert_eq!(median(&[f64::NAN, 3.0, 1.0, f64::NAN, 2.0]), 2.0);
        assert_eq!(median(&[f64::NAN]), 0.0);
        // Even length: midpoint of the two middles, not the upper one.
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        // Odd length: the middle element.
        assert_eq!(median(&[30.0, 10.0, 20.0]), 20.0);
    }

    #[test]
    fn parse_scale_accepts_numbers_and_rejects_garbage() {
        assert_eq!(parse_scale("1.0"), Ok(1.0));
        assert_eq!(parse_scale(" 2.5 "), Ok(2.5));
        assert_eq!(parse_scale("0.1"), Ok(0.1));
        assert!(parse_scale("fast").is_err());
        assert!(parse_scale("").is_err());
        assert!(parse_scale("1.o").is_err());
        assert!(parse_scale("0").is_err(), "zero scale is meaningless");
        assert!(parse_scale("-1").is_err());
        assert!(parse_scale("inf").is_err());
        assert!(parse_scale("NaN").is_err());
    }
}
