//! Per-stage / per-lock time breakdowns from a metrics snapshot.
//!
//! The registry in `dinomo_obs` accumulates request-lifecycle stage
//! histograms (`stage_*`) and lock-wait histograms (`lock_wait_*`); this
//! module turns one [`Snapshot`] into the profile tables the saturation
//! and open-loop benches print, and names the **dominant** row — the
//! stage or lock with the most accumulated time, i.e. the data-backed
//! answer to "what is the next scaling ceiling".

use std::cmp::Ordering;

use dinomo_obs::{HistogramSummary, LogHistogram, Registry, Snapshot};

use crate::harness::bench_results_dir;

/// One row of a stage/lock profile table.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Metric name (`stage_shard_execute_ns`, `lock_wait_ordered_root_ns`, ...).
    pub name: String,
    /// Merged quantile summary for that histogram.
    pub summary: HistogramSummary,
}

impl ProfileRow {
    /// Accumulated time — the dominance metric.
    pub fn total_ns(&self) -> f64 {
        self.summary.total_ns()
    }
}

/// The stage and lock-wait rows of a snapshot with at least one sample,
/// sorted by accumulated time, largest first.
pub fn profile_rows(snap: &Snapshot) -> Vec<ProfileRow> {
    let mut rows: Vec<ProfileRow> = snap
        .histograms
        .iter()
        .filter(|(name, s)| {
            (name.starts_with("stage_") || name.starts_with("lock_wait_")) && s.count > 0
        })
        .map(|(name, s)| ProfileRow {
            name: name.clone(),
            summary: *s,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_ns()
            .partial_cmp(&a.total_ns())
            .unwrap_or(Ordering::Equal)
    });
    rows
}

/// The stage or lock with the most accumulated time, if any samples
/// landed at all.
pub fn dominant_row(snap: &Snapshot) -> Option<ProfileRow> {
    profile_rows(snap).into_iter().next()
}

/// Cumulative stage/lock histograms captured before a measurement, so
/// the measurement's own contribution can be isolated afterwards with
/// [`profile_since`]. Registry histograms are process-lifetime
/// cumulative; without the baseline, preload and warm-up traffic would
/// drown the measured window.
pub struct ProfileBaseline {
    hists: Vec<(String, LogHistogram)>,
}

/// Capture the current cumulative stage/lock histograms of a registry.
pub fn profile_baseline(registry: &Registry) -> ProfileBaseline {
    let snap = registry.snapshot();
    let hists = snap
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("stage_") || name.starts_with("lock_wait_"))
        .map(|(name, _)| (name.clone(), registry.histogram(name).merged()))
        .collect();
    ProfileBaseline { hists }
}

/// The stage/lock rows accumulated **since** `base` was captured —
/// exact windowed counts and quantiles via bucket-wise histogram
/// subtraction — sorted by total time, largest first. Histograms
/// created after the baseline count from zero.
pub fn profile_since(registry: &Registry, base: &ProfileBaseline) -> Vec<ProfileRow> {
    let snap = registry.snapshot();
    let mut rows: Vec<ProfileRow> = snap
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("stage_") || name.starts_with("lock_wait_"))
        .filter_map(|(name, _)| {
            let now = registry.histogram(name).merged();
            let window = match base.hists.iter().find(|(n, _)| n == name) {
                Some((_, then)) => now.diff(then),
                None => now,
            };
            (!window.is_empty()).then(|| ProfileRow {
                name: name.clone(),
                summary: HistogramSummary::of(&window),
            })
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_ns()
            .partial_cmp(&a.total_ns())
            .unwrap_or(Ordering::Equal)
    });
    rows
}

/// Print a windowed profile table (see [`print_profile`] for the
/// format), returning the rows so callers can reuse the ordering.
pub fn print_profile_rows(header: &str, rows: &[ProfileRow]) {
    if rows.is_empty() {
        println!("profile [{header}]: no stage/lock samples recorded");
        return;
    }
    let grand_total: f64 = rows.iter().map(ProfileRow::total_ns).sum();
    println!(
        "profile [{header}] {:<28} {:>9} {:>10} {:>10} {:>10} {:>6}",
        "stage/lock", "count", "p50", "p99", "total", "share"
    );
    for row in rows {
        let share = if grand_total > 0.0 {
            100.0 * row.total_ns() / grand_total
        } else {
            0.0
        };
        println!(
            "profile [{header}] {:<28} {:>9} {:>10} {:>10} {:>10} {share:>5.1}%",
            row.name,
            row.summary.count,
            fmt_ns(row.summary.p50_ns as f64),
            fmt_ns(row.summary.p99_ns as f64),
            fmt_ns(row.total_ns()),
        );
    }
}

/// Print a profile table for one snapshot: every stage/lock row with
/// samples, sorted by total time, with each row's share of the summed
/// stage/lock time. `header` names the measurement the snapshot covers
/// (e.g. "16 threads").
pub fn print_profile(header: &str, snap: &Snapshot) {
    print_profile_rows(header, &profile_rows(snap));
}

/// Render nanoseconds with a human-scale unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Write the snapshot's JSON export to
/// `target/bench-results/metrics_snapshot.json`, where `bench_summary`
/// folds it into `BENCH_RESULTS.json` beside the bench medians.
pub fn write_metrics_snapshot(snap: &Snapshot) {
    let dir = bench_results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("metrics_snapshot.json");
    match std::fs::write(&path, snap.to_json()) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_obs::{LockId, Registry, Stage};

    #[test]
    fn rows_sort_by_total_time_and_skip_empty() {
        let reg = Registry::new();
        // 10 slow shard executions dominate 100 fast queue waits.
        let slow = reg.stage(Stage::ShardExecute);
        for _ in 0..10 {
            slow.record(1_000_000);
        }
        let fast = reg.stage(Stage::QueueWait);
        for _ in 0..100 {
            fast.record(1_000);
        }
        // Registered but never recorded: must not appear.
        let _empty = reg.lock_wait(LockId::Reconfig);

        let snap = reg.snapshot();
        let rows = profile_rows(&snap);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, Stage::ShardExecute.metric_name());
        assert_eq!(rows[1].name, Stage::QueueWait.metric_name());
        let dom = dominant_row(&snap).unwrap();
        assert_eq!(dom.name, Stage::ShardExecute.metric_name());
        assert!(dom.total_ns() >= 9.0 * 1e6);
    }

    #[test]
    fn profile_since_isolates_the_measured_window() {
        let reg = Registry::new();
        let h = reg.stage(Stage::DpmLookup);
        // "Preload" traffic: slow, would dominate a cumulative profile.
        for _ in 0..1_000 {
            h.record(10_000_000);
        }
        let base = profile_baseline(&reg);
        // The measured window: fast, plus a lock that first appears now.
        for _ in 0..50 {
            h.record(2_000);
        }
        let lock = reg.lock_wait(LockId::MergeEngine);
        lock.record(500);

        let rows = profile_since(&reg, &base);
        assert_eq!(rows.len(), 2);
        let lookup = rows
            .iter()
            .find(|r| r.name == Stage::DpmLookup.metric_name())
            .unwrap();
        assert_eq!(lookup.summary.count, 50);
        assert!(
            lookup.summary.p99_ns < 10_000,
            "window p99 {} contaminated by preload",
            lookup.summary.p99_ns
        );
        let merge = rows
            .iter()
            .find(|r| r.name == LockId::MergeEngine.metric_name())
            .unwrap();
        assert_eq!(merge.summary.count, 1);
    }

    #[test]
    fn empty_snapshot_has_no_dominant_row() {
        let reg = Registry::new();
        assert!(dominant_row(&reg.snapshot()).is_none());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1_500.0), "1.5us");
        assert_eq!(fmt_ns(2_500_000.0), "2.5ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
    }
}
