//! Latency histograms for the bench crate.
//!
//! The histogram itself is [`dinomo_core::LogHistogram`] — it lives in
//! `dinomo-core` so the cluster driver's per-epoch timeline can use the
//! same buckets — re-exported here with the bench-facing summary type the
//! open-loop driver and `openloop_bench` report from.
//!
//! Design (HDR-histogram style, no external deps): values bucket into 64
//! linear sub-buckets per power-of-two octave, giving ≤1/64 (~1.6 %)
//! relative error over the full `u64` range at a fixed ~30 KiB per
//! histogram. Recording is O(1); percentile queries scan the fixed bucket
//! array. Histograms merge bucket-wise, so per-worker recording needs no
//! locks.

pub use dinomo_core::LogHistogram;

use serde::Serialize;

/// Millisecond percentile summary of a latency histogram recorded in
/// nanoseconds — the row shape `openloop_bench` and the timeline report.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency in milliseconds.
    pub p999_ms: f64,
    /// Maximum recorded latency in milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarize a histogram whose samples are nanoseconds.
    pub fn from_nanos(hist: &LogHistogram) -> Self {
        const MS: f64 = 1e6;
        LatencySummary {
            count: hist.count(),
            mean_ms: hist.mean() / MS,
            p50_ms: hist.value_at_quantile(0.50) as f64 / MS,
            p99_ms: hist.value_at_quantile(0.99) as f64 / MS,
            p999_ms: hist.value_at_quantile(0.999) as f64 / MS,
            max_ms: hist.max() as f64 / MS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinomo_workload::session_seed;

    #[test]
    fn summary_tracks_a_sorted_vector_oracle() {
        // Pseudorandom nanosecond samples spanning ~1 µs – ~100 ms,
        // deterministic via the workload crate's seed mixer.
        let samples: Vec<u64> = (0..40_000u32)
            .map(|i| 1_000 + session_seed(0xACE, i) % 100_000_000)
            .collect();
        let mut hist = LogHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let summary = LatencySummary::from_nanos(&hist);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let oracle = |q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1] as f64 / 1e6
        };

        assert_eq!(summary.count, 40_000);
        // The histogram may only overshoot, and by at most one part in 64
        // (one sub-bucket) — never undershoot the true percentile.
        for (got, q) in [
            (summary.p50_ms, 0.50),
            (summary.p99_ms, 0.99),
            (summary.p999_ms, 0.999),
        ] {
            let want = oracle(q);
            assert!(
                got >= want && got <= want * (1.0 + 1.0 / 64.0) + 1e-6,
                "q={q}: histogram {got} ms vs oracle {want} ms"
            );
        }
        let true_max = *sorted.last().unwrap() as f64 / 1e6;
        assert!((summary.max_ms - true_max).abs() < 1e-9);
        let true_mean = sorted.iter().map(|&s| s as f64).sum::<f64>() / sorted.len() as f64 / 1e6;
        assert!((summary.mean_ms / true_mean - 1.0).abs() < 0.02);
    }
}
