//! # dinomo-bench — the paper-reproduction harness
//!
//! One binary per table/figure of the paper's evaluation section (run them
//! with `cargo run -p dinomo-bench --release --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig3_cache_policies` | Figure 3 (cache-policy throughput) + Table 5 (RTs/op) |
//! | `fig4_dpm_compute`    | Figure 4 (log-write vs merge throughput, DRAM vs PM) |
//! | `fig5_scalability`    | Figure 5 (throughput scalability) + Table 6 (profiling) |
//! | `fig6_elasticity`     | Figure 6 (auto-scaling timeline) |
//! | `fig7_load_balancing` | Figure 7 (selective replication under high skew) |
//! | `fig8_fault_tolerance`| Figure 8 (KN failure timeline) |
//!
//! All binaries accept the `DINOMO_SCALE` environment variable (default
//! `1.0`): the default scale finishes in minutes on a laptop; larger values
//! move the experiments toward the paper's full-size parameters.  Each binary
//! prints its table to stdout and writes a JSON artifact under
//! `target/bench-results/` for EXPERIMENTS.md.
//!
//! Component micro-benchmarks (Criterion) live under `benches/`.

#![warn(missing_docs)]

pub mod breakdown;
pub mod harness;
pub mod hist;
pub mod openloop;

pub use breakdown::{
    dominant_row, print_profile, print_profile_rows, profile_baseline, profile_rows, profile_since,
    write_metrics_snapshot, ProfileBaseline, ProfileRow,
};
pub use harness::{
    bench_results_dir, calibrated_cost_model, kn_scaling_cluster, measure_batch_amortization,
    measure_kn_batch_throughput, measure_point, median, parse_scale, scale, write_bench_record,
    write_json, BatchPoint, BenchMetric, BenchRecord, MeasuredPoint, SystemKind,
};
pub use hist::{LatencySummary, LogHistogram};
pub use openloop::{run_open_loop, OpenLoopConfig, OpenLoopPlan, OpenLoopReport};
