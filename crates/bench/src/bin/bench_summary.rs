//! Merge every per-bench JSON artifact under `target/bench-results/` into
//! one `BENCH_RESULTS.json`, the machine-readable perf summary CI uploads
//! as a build artifact (run it after `cargo bench`):
//!
//! ```text
//! cargo run -p dinomo-bench --release --bin bench_summary
//! ```
//!
//! Each bench (and figure binary) writes its medians to
//! `target/bench-results/<name>.json`; this merges them textually — every
//! input is already valid JSON, so the output is
//! `{"<name>": <contents>, ...}` plus a small provenance header — without
//! needing a dynamic JSON value type. Exits non-zero if no artifacts are
//! found (CI would otherwise upload an empty summary and call it a
//! trajectory).

use dinomo_bench::harness::bench_results_dir;

fn main() {
    let dir = bench_results_dir();
    let mut entries: Vec<(String, String)> = Vec::new();
    let listing = match std::fs::read_dir(&dir) {
        Ok(listing) => listing,
        Err(e) => {
            eprintln!(
                "bench_summary: cannot read {} ({e}); run `cargo bench` first",
                dir.display()
            );
            std::process::exit(1);
        }
    };
    for entry in listing.flatten() {
        let path = entry.path();
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if path.extension().and_then(|e| e.to_str()) != Some("json") || stem == "BENCH_RESULTS" {
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(contents) => entries.push((stem.to_string(), contents)),
            Err(e) => eprintln!("bench_summary: skipping {}: {e}", path.display()),
        }
    }
    if entries.is_empty() {
        eprintln!(
            "bench_summary: no bench artifacts in {}; run `cargo bench` first",
            dir.display()
        );
        std::process::exit(1);
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::from("{\n");
    // Provenance: the commit CI measured, when available.
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        out.push_str(&format!("  \"commit\": \"{}\",\n", sha.escape_default()));
    }
    out.push_str("  \"benches\": {\n");
    for (i, (name, contents)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            name.escape_default(),
            contents.trim(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");

    let path = dir.join("BENCH_RESULTS.json");
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("bench_summary: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "[artifact] {} ({} bench{})",
        path.display(),
        entries.len(),
        if entries.len() == 1 { "" } else { "es" }
    );
}
