//! Figure 7: load balancing under a highly-skewed workload.
//!
//! The workload switches from low skew (Zipf 0.5) to high skew (Zipf 2.0);
//! a handful of hot keys then overload their owner KNs.  Dinomo's M-node
//! detects the hot keys and selectively replicates them across the cluster;
//! Dinomo-N cannot (no selective replication) and Clover already shares
//! everything but pays consistency costs.  The timeline reports throughput,
//! latencies and the normalised standard deviation of per-node load.

use dinomo_bench::harness::{scale, write_json};
use dinomo_clover::{CloverConfig, CloverKvs};
use dinomo_cluster::{
    DriverConfig, ElasticKvs, EventKind, PolicyEngine, ScriptedEvent, SimulationDriver, SloConfig,
    TimelineRow,
};
use dinomo_core::{Kvs, KvsConfig, Variant};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_simnet::FabricConfig;
use dinomo_workload::{KeyDistribution, WorkloadConfig, WorkloadMix};
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Serialize)]
struct SystemTimeline {
    system: String,
    rows: Vec<TimelineRow>,
}

const KNS: usize = 8;

fn build_dinomo(variant: Variant, num_keys: u64, value_len: usize) -> Arc<dyn ElasticKvs> {
    let config = KvsConfig {
        variant,
        initial_kns: KNS,
        threads_per_kn: 2,
        cache_bytes_per_kn: (num_keys as usize * value_len) / 32,
        cache_kind: None,
        write_batch_ops: 8,
        dpm: DpmConfig {
            pool: PmemConfig::with_capacity(num_keys * (value_len as u64 + 96) * 8 + (64 << 20)),
            segment_bytes: 1 << 20,
            merge_threads: 2,
            index: PclhtConfig::for_capacity(num_keys as usize * 2),
            ..DpmConfig::default()
        },
        fabric: FabricConfig::with_injected_delay(1),
        ring_vnodes: 64,
        executor_queue_depth: 64,
        executor_min_sub_batch: 8,
    };
    Arc::new(Kvs::new(config).expect("cluster"))
}

fn build_clover(num_keys: u64, value_len: usize) -> Arc<dyn ElasticKvs> {
    let config = CloverConfig {
        initial_kns: KNS,
        threads_per_kn: 2,
        cache_bytes_per_kn: (num_keys as usize * value_len) / 32,
        pool: PmemConfig::with_capacity(num_keys * (value_len as u64 + 96) * 16 + (64 << 20)),
        fabric: FabricConfig::with_injected_delay(1),
        ..CloverConfig::default()
    };
    Arc::new(CloverKvs::new(config).expect("cluster"))
}

fn main() {
    let scale = scale();
    let num_keys = ((4_000.0 * scale) as u64).max(1_000);
    let value_len = 256usize;
    let epochs = ((30.0 * scale) as usize).clamp(20, 90);
    let switch_at = epochs / 5;

    let workload = WorkloadConfig {
        num_keys,
        key_len: 8,
        value_len,
        mix: WorkloadMix::WRITE_HEAVY_UPDATE,
        distribution: KeyDistribution::LOW_SKEW,
        seed: 7,
        max_scan_len: 16,
    };
    let slo = SloConfig {
        avg_latency_ms: 0.10,
        tail_latency_ms: 1.0,
        overutil_lower_bound: 0.60,
        underutil_upper_bound: 0.0, // never remove nodes in this experiment
        hot_sigma: 3.0,
        cold_sigma: 1.0,
        grace_epochs: 2,
        max_nodes: KNS,
        min_nodes: KNS,
    };
    let events = vec![ScriptedEvent {
        at_epoch: switch_at,
        event: EventKind::SetDistribution(KeyDistribution::HIGH_SKEW),
    }];

    println!("# Figure 7 — load balancing (switch to Zipf 2.0 at epoch {switch_at}, {KNS} KNs)");
    let mut outputs = Vec::new();
    let systems: Vec<(String, Arc<dyn ElasticKvs>)> = vec![
        (
            "dinomo".into(),
            build_dinomo(Variant::Dinomo, num_keys, value_len),
        ),
        (
            "dinomo-n".into(),
            build_dinomo(Variant::DinomoN, num_keys, value_len),
        ),
        ("clover".into(), build_clover(num_keys, value_len)),
    ];
    for (name, store) in systems {
        let driver = SimulationDriver::new(
            store,
            DriverConfig {
                epoch_ms: 150,
                total_epochs: epochs,
                max_clients: 6,
                initial_clients: 6,
                workload,
                preload: true,
                key_sample_every: 4,
                batch_size: 1,
                ..DriverConfig::default()
            },
        )
        .with_policy(PolicyEngine::new(slo));
        let rows = driver.run(&events);
        println!("\n## {name}");
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10} {:>11}  actions",
            "epoch", "kops/s", "avg ms", "p99 ms", "load std", "replicated"
        );
        for r in &rows {
            println!(
                "{:<6} {:>10.1} {:>10.3} {:>10.3} {:>10.2} {:>11}  {}",
                r.epoch,
                r.throughput / 1e3,
                r.avg_latency_ms,
                r.p99_latency_ms,
                r.load_imbalance,
                r.replicated_keys,
                r.actions.join("; ")
            );
        }
        let skewed_rows: Vec<&TimelineRow> = rows.iter().filter(|r| r.epoch > switch_at).collect();
        let first_skewed = skewed_rows.first().map(|r| r.throughput).unwrap_or(0.0);
        let last = skewed_rows.last().map(|r| r.throughput).unwrap_or(0.0);
        println!(
            "-> throughput right after skew switch: {:.1} kops/s, at the end: {:.1} kops/s, replicated keys: {}",
            first_skewed / 1e3,
            last / 1e3,
            rows.last().map(|r| r.replicated_keys).unwrap_or(0)
        );
        outputs.push(SystemTimeline { system: name, rows });
    }
    write_json("fig7_load_balancing", &outputs);
}
