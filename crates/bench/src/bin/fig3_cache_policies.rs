//! Figure 3 + Table 5: comparison of KN cache policies.
//!
//! One KVS node, a read-only uniformly-distributed working set covering 5 %
//! of the loaded keys, and the cache size swept from 1 % to 16 % of the
//! dataset.  For each policy the harness reports throughput relative to the
//! no-cache baseline (Figure 3) and network round trips per operation
//! (Table 5).

use dinomo_bench::harness::{calibrated_cost_model, scale, write_json};
use dinomo_cache::CacheKind;
use dinomo_core::{Kvs, KvsConfig, Variant};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_simnet::{ClusterCostInputs, FabricConfig, ThroughputModel};
use dinomo_workload::key_for;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PolicyPoint {
    policy: String,
    cache_pct: u32,
    rts_per_op: f64,
    hit_ratio: f64,
    value_hit_ratio: f64,
    modeled_throughput: f64,
    speedup_vs_nocache: f64,
}

fn policies() -> Vec<(&'static str, CacheKind)> {
    vec![
        ("NoCache", CacheKind::None),
        ("ShortcutOnly", CacheKind::ShortcutOnly),
        ("Static-20%", CacheKind::StaticFraction(20)),
        ("Static-40%", CacheKind::StaticFraction(40)),
        ("Static-80%", CacheKind::StaticFraction(80)),
        ("ValueOnly", CacheKind::ValueOnly),
        ("DAC", CacheKind::Dac),
    ]
}

fn run_policy(
    kind: CacheKind,
    cache_bytes: usize,
    num_keys: u64,
    value_len: usize,
    working_set: u64,
    ops: u64,
) -> (f64, f64, f64) {
    // The paper's DAC microbenchmark: one KN, 16 threads, 8 B keys, 64 B
    // values, read-only over a uniformly-distributed 5 % working set.
    let dpm = DpmConfig {
        pool: PmemConfig::with_capacity(num_keys * (value_len as u64 + 64) * 2 + (16 << 20)),
        segment_bytes: 1 << 20,
        flush_batch_bytes: 32 << 10,
        merge_threads: 2,
        unmerged_segment_threshold: 2,
        index: PclhtConfig::for_capacity(num_keys as usize),
        inject_media_delay: false,
        gc: dinomo_dpm::GcConfig::default(),
    };
    let config = KvsConfig {
        variant: Variant::Dinomo,
        initial_kns: 1,
        threads_per_kn: 4,
        cache_bytes_per_kn: cache_bytes.max(1024),
        cache_kind: Some(kind),
        write_batch_ops: 8,
        dpm,
        fabric: FabricConfig::default(),
        ring_vnodes: 32,
        executor_queue_depth: 64,
        executor_min_sub_batch: 8,
    };
    let kvs = Kvs::new(config).expect("cluster");
    let client = kvs.client();
    for i in 0..num_keys {
        client
            .insert(&key_for(i, 8), &vec![(i % 251) as u8; value_len])
            .unwrap();
    }
    kvs.quiesce().unwrap();
    // Clear the warm-up effects of the load phase.
    for id in kvs.kn_ids() {
        kvs.kn(id).unwrap().clear_caches();
    }
    let before = kvs.stats();
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..ops {
        // xorshift over the working set (uniform).
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = state % working_set;
        client.lookup(&key_for(id, 8)).unwrap();
    }
    let after = kvs.stats();
    let delta = dinomo_core::KvsStats {
        kns: after
            .kns
            .iter()
            .map(|kn| {
                let b = before
                    .kns
                    .iter()
                    .find(|p| p.id == kn.id)
                    .copied()
                    .unwrap_or_default();
                kn.since(&b)
            })
            .collect(),
        ..after.clone()
    };
    (
        delta.rts_per_op(),
        delta.cache_hit_ratio(),
        delta.value_hit_ratio(),
    )
}

fn main() {
    let scale = scale();
    let num_keys = ((60_000.0 * scale) as u64).max(10_000);
    // Microbenchmark cost constants: a tight read loop over 64 B values is
    // dominated by network round trips, not request-handling CPU.
    let value_len = 64usize;
    let working_set = (num_keys / 20).max(500); // 5 % of the dataset
    let ops = ((40_000.0 * scale) as u64).max(10_000);
    let dataset_bytes = num_keys as usize * (value_len + 8);
    let mut model = calibrated_cost_model();
    model.kn_base_cpu_ns = 1_500;
    model.kn_verb_cpu_ns = 300;

    println!("# Figure 3 / Table 5 — cache policy comparison");
    println!("# dataset: {num_keys} keys x {value_len} B, working set {working_set} keys, {ops} read ops");
    println!();
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>12} {:>14} {:>12}",
        "policy", "cache%", "RTs/op", "hit%", "value-hit%", "Mops (model)", "vs NoCache"
    );

    let mut results: Vec<PolicyPoint> = Vec::new();
    for cache_pct in [1u32, 2, 4, 8, 16] {
        let cache_bytes = dataset_bytes * cache_pct as usize / 100;
        let mut nocache_throughput = None;
        for (name, kind) in policies() {
            let (rts, hit, value_hit) =
                run_policy(kind, cache_bytes, num_keys, value_len, working_set, ops);
            let inputs = ClusterCostInputs {
                num_kns: 1,
                threads_per_kn: 4,
                rts_per_op: rts,
                remote_bytes_per_op: rts * value_len as f64,
                miss_fraction: 1.0 - hit,
                write_fraction: 0.0,
                dpm_merge_capacity_ops: 0.0,
                metadata_rpcs_per_op: 0.0,
                metadata_server_capacity_rpcs: 0.0,
            };
            // The DAC microbenchmark is latency-bound (a closed loop with one
            // outstanding request per thread), so throughput follows the
            // modeled per-operation latency rather than the saturation model.
            let breakdown = ThroughputModel::cluster_throughput(&model, &inputs);
            let threads = 4.0;
            let throughput = threads * 1e9 / breakdown.mean_latency_ns.max(1.0);
            let baseline = *nocache_throughput.get_or_insert(throughput);
            let speedup = throughput / baseline;
            println!(
                "{:<14} {:>8}% {:>10.2} {:>9.1}% {:>11.1}% {:>14.3} {:>11.2}x",
                name,
                cache_pct,
                rts,
                hit * 100.0,
                value_hit * 100.0,
                throughput / 1e6,
                speedup
            );
            results.push(PolicyPoint {
                policy: name.to_string(),
                cache_pct,
                rts_per_op: rts,
                hit_ratio: hit,
                value_hit_ratio: value_hit,
                modeled_throughput: throughput,
                speedup_vs_nocache: speedup,
            });
        }
        println!();
    }
    write_json("fig3_table5_cache_policies", &results);

    // Table 5 view: RTs/op per policy per cache size.
    println!("# Table 5 — RTs per operation");
    println!(
        "{:<8} {}",
        "cache%",
        policies()
            .iter()
            .map(|(n, _)| format!("{n:>14}"))
            .collect::<String>()
    );
    for cache_pct in [1u32, 2, 4, 8, 16] {
        let row: String = policies()
            .iter()
            .map(|(name, _)| {
                let p = results
                    .iter()
                    .find(|r| r.cache_pct == cache_pct && r.policy == *name)
                    .unwrap();
                format!("{:>14.2}", p.rts_per_op)
            })
            .collect();
        println!("{:<8} {row}", format!("{cache_pct}%"));
    }
}
