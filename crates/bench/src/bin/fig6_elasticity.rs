//! Figure 6: auto-scaling under a bursty workload.
//!
//! A low-skew 50 % read / 50 % update workload starts with one client; the
//! load then jumps (paper: 7 extra client nodes), the M-node reacts by adding
//! KNs one grace period at a time, and when the load drops again an idle KN
//! is evicted.  Dinomo (ownership repartitioning only) is compared with
//! Dinomo-N (physical data reshuffling).  Timeline epochs are compressed
//! relative to the paper's 300 s run.

use dinomo_bench::harness::{scale, write_json};
use dinomo_cluster::{
    DriverConfig, ElasticKvs, EventKind, PolicyEngine, ScriptedEvent, SimulationDriver, SloConfig,
    TimelineRow,
};
use dinomo_core::{Kvs, KvsConfig, Variant};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_simnet::FabricConfig;
use dinomo_workload::{KeyDistribution, WorkloadConfig, WorkloadMix};
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Serialize)]
struct SystemTimeline {
    system: String,
    rows: Vec<TimelineRow>,
}

fn build(variant: Variant, num_keys: u64, value_len: usize) -> Arc<dyn ElasticKvs> {
    let config = KvsConfig {
        variant,
        initial_kns: 1,
        threads_per_kn: 4,
        cache_bytes_per_kn: (num_keys as usize * value_len) / 16,
        cache_kind: None,
        write_batch_ops: 8,
        dpm: DpmConfig {
            pool: PmemConfig::with_capacity(num_keys * (value_len as u64 + 96) * 8 + (64 << 20)),
            segment_bytes: 1 << 20,
            merge_threads: 2,
            index: PclhtConfig::for_capacity(num_keys as usize * 2),
            ..DpmConfig::default()
        },
        fabric: FabricConfig::with_injected_delay(1),
        ring_vnodes: 64,
        executor_queue_depth: 64,
        executor_min_sub_batch: 8,
    };
    Arc::new(Kvs::new(config).expect("cluster"))
}

fn main() {
    let scale = scale();
    let num_keys = ((4_000.0 * scale) as u64).max(1_000);
    let value_len = 256usize;
    let epochs = ((40.0 * scale) as usize).clamp(24, 120);
    let load_increase_at = epochs / 6;
    let load_drop_at = epochs * 3 / 4;

    let workload = WorkloadConfig {
        num_keys,
        key_len: 8,
        value_len,
        mix: WorkloadMix::WRITE_HEAVY_UPDATE,
        distribution: KeyDistribution::LOW_SKEW,
        seed: 6,
        max_scan_len: 16,
    };
    // SLOs calibrated to the compressed simulation: the paper's 1.2 ms /
    // 16 ms thresholds are scaled to the latencies the simulated fabric
    // produces under contention.
    let slo = SloConfig {
        avg_latency_ms: 0.08,
        tail_latency_ms: 0.8,
        overutil_lower_bound: 0.20,
        underutil_upper_bound: 0.10,
        grace_epochs: 4,
        max_nodes: 4,
        min_nodes: 1,
        ..SloConfig::default()
    };
    let events = vec![
        ScriptedEvent {
            at_epoch: load_increase_at,
            event: EventKind::SetClients(8),
        },
        ScriptedEvent {
            at_epoch: load_drop_at,
            event: EventKind::SetClients(1),
        },
    ];

    println!("# Figure 6 — elasticity timeline (load x8 at epoch {load_increase_at}, /8 at epoch {load_drop_at})");
    let mut outputs = Vec::new();
    for variant in [Variant::Dinomo, Variant::DinomoN] {
        let store = build(variant, num_keys, value_len);
        let driver = SimulationDriver::new(
            store,
            DriverConfig {
                epoch_ms: 150,
                total_epochs: epochs,
                max_clients: 8,
                initial_clients: 1,
                workload,
                preload: true,
                key_sample_every: 8,
                batch_size: 1,
                ..DriverConfig::default()
            },
        )
        .with_policy(PolicyEngine::new(slo));
        let rows = driver.run(&events);
        println!("\n## {}", variant.name());
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>6} {:>9}  actions",
            "epoch", "kops/s", "avg ms", "p99 ms", "KNs", "clients"
        );
        for r in &rows {
            println!(
                "{:<6} {:>10.1} {:>12.3} {:>12.3} {:>6} {:>9}  {}",
                r.epoch,
                r.throughput / 1e3,
                r.avg_latency_ms,
                r.p99_latency_ms,
                r.num_nodes,
                r.active_clients,
                r.actions.join("; ")
            );
        }
        let max_nodes = rows.iter().map(|r| r.num_nodes).max().unwrap_or(1);
        let zero_epochs = rows.iter().filter(|r| r.ops == 0).count();
        println!("-> peak KNs: {max_nodes}, epochs with zero throughput: {zero_epochs}");
        outputs.push(SystemTimeline {
            system: variant.name().to_string(),
            rows,
        });
    }
    write_json("fig6_elasticity", &outputs);
}
