//! Figure 5 + Table 6: end-to-end throughput scalability of Dinomo,
//! Dinomo-N, Dinomo-S and Clover across five workload mixes and 1–16 KNs.
//!
//! The real data structures (caches, hash rings, log, index, version chains)
//! are exercised for every configuration to measure hit ratios, RTs/op and
//! bytes/op (Table 6); the calibrated cluster cost model converts those into
//! the paper-scale throughput curves (Figure 5).

use dinomo_bench::harness::MeasureParams;
use dinomo_bench::harness::{measure_point, scale, write_json, MeasuredPoint, SystemKind};
use dinomo_workload::WorkloadMix;

fn main() {
    let scale = scale();
    let params = MeasureParams::scaled(scale);
    let kn_counts = [1usize, 2, 4, 8, 16];
    println!("# Figure 5 / Table 6 — performance and scalability (Zipf 0.99)");
    println!(
        "# {} keys x {} B values, {} ops per configuration, cache {} KiB per KN",
        params.num_keys,
        params.value_len,
        params.ops,
        params.cache_bytes_per_kn / 1024
    );

    let mut all: Vec<MeasuredPoint> = Vec::new();
    for mix in WorkloadMix::FIGURE5_MIXES {
        println!("\n## workload {}", mix.name);
        println!(
            "{:<10} {:>4} {:>12} {:>10} {:>12} {:>10} {:>12}",
            "system", "KNs", "Mops (model)", "hit %", "value-hit %", "RTs/op", "bytes/op"
        );
        for system in SystemKind::ALL {
            for &kns in &kn_counts {
                let p = measure_point(system, kns, mix, &params);
                println!(
                    "{:<10} {:>4} {:>12.3} {:>9.1}% {:>11.1}% {:>10.2} {:>12.0}",
                    system.name(),
                    kns,
                    p.modeled_throughput / 1e6,
                    p.cache_hit_ratio * 100.0,
                    p.value_hit_ratio * 100.0,
                    p.rts_per_op,
                    p.bytes_per_op
                );
                all.push(p);
            }
        }
        // Headline check for this mix: Dinomo vs Clover at 16 KNs.
        let dinomo16 = all
            .iter()
            .find(|p| p.mix == mix.name && p.system == SystemKind::Dinomo && p.num_kns == 16)
            .unwrap();
        let clover16 = all
            .iter()
            .find(|p| p.mix == mix.name && p.system == SystemKind::Clover && p.num_kns == 16)
            .unwrap();
        println!(
            "-> Dinomo/Clover at 16 KNs: {:.1}x",
            dinomo16.modeled_throughput / clover16.modeled_throughput.max(1.0)
        );
    }
    write_json("fig5_table6_scalability", &all);

    // Compact Table 6 rendering (hit ratio with value-hit share, RTs/op).
    println!("\n# Table 6 — profiling (D = Dinomo, DS = Dinomo-S, C = Clover)");
    for mix in WorkloadMix::FIGURE5_MIXES {
        println!("\nworkload {}", mix.name);
        println!(
            "{:<5} {:>22} {:>22} {:>30}",
            "KNs", "hit% D (value%)", "hit% DS / C", "RTs/op D / DS / C"
        );
        for &kns in &kn_counts {
            let get = |s: SystemKind| {
                all.iter()
                    .find(|p| p.mix == mix.name && p.system == s && p.num_kns == kns)
                    .unwrap()
            };
            let d = get(SystemKind::Dinomo);
            let ds = get(SystemKind::DinomoS);
            let c = get(SystemKind::Clover);
            println!(
                "{:<5} {:>14.0}% ({:>3.0}%) {:>11.0}% / {:>3.0}% {:>12.2} / {:.2} / {:.2}",
                kns,
                d.cache_hit_ratio * 100.0,
                d.value_hit_ratio * 100.0,
                ds.cache_hit_ratio * 100.0,
                c.cache_hit_ratio * 100.0,
                d.rts_per_op,
                ds.rts_per_op,
                c.rts_per_op
            );
        }
    }
}
