//! Figure 4: how much compute the DPM needs for asynchronous merging.
//!
//! The paper's worst case: an insert-only workload from 16 KNs.  We measure
//! (a) the log-write throughput the KNs achieve when they never wait for the
//! merge engine ("log-write max"), (b) the log-write throughput with the
//! default back-pressure, and (c) the merge throughput achievable with 1–16
//! DPM processor threads on both the DRAM and the Optane PM timing profiles.

use dinomo_bench::harness::{scale, write_json};
use dinomo_dpm::{DpmConfig, DpmNode, LogWriter};
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::{MediaProfile, PmemConfig};
use dinomo_simnet::{FabricConfig, Nic};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Fig4Point {
    series: String,
    dpm_threads: usize,
    mops: f64,
}

const KNS: usize = 16;

fn insert_workload(
    dpm: &Arc<DpmNode>,
    entries_per_kn: u64,
    value_len: usize,
) -> std::time::Duration {
    let start = Instant::now();
    let handles: Vec<_> = (0..KNS as u32)
        .map(|kn| {
            let dpm = Arc::clone(dpm);
            std::thread::spawn(move || {
                let mut writer = LogWriter::new(dpm, kn, Nic::new(FabricConfig::default()));
                for i in 0..entries_per_kn {
                    let key = format!("kn{kn:02}-key{i:010}");
                    writer.append_put(key.as_bytes(), &vec![0xABu8; value_len]);
                    if writer.should_flush() {
                        writer.flush().expect("flush");
                    }
                }
                writer.flush().expect("flush");
                writer.seal_current();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    start.elapsed()
}

fn pool_capacity(total_entries: u64, value_len: usize) -> u64 {
    total_entries * (value_len as u64 + 96) * 2 + (64 << 20)
}

fn config(
    merge_threads: usize,
    profile: MediaProfile,
    inject: bool,
    unmerged_threshold: usize,
    total_entries: u64,
    value_len: usize,
) -> DpmConfig {
    DpmConfig {
        pool: PmemConfig {
            capacity_bytes: pool_capacity(total_entries, value_len),
            profile,
            track_persistence: false,
        },
        segment_bytes: 2 << 20,
        flush_batch_bytes: 64 << 10,
        merge_threads,
        unmerged_segment_threshold: unmerged_threshold,
        index: PclhtConfig::for_capacity(total_entries as usize),
        inject_media_delay: inject,
        gc: dinomo_dpm::GcConfig::default(),
    }
}

fn main() {
    let scale = scale();
    let value_len = 1024usize;
    let entries_per_kn = ((6_000.0 * scale) as u64).max(1_500);
    let total_entries = entries_per_kn * KNS as u64;
    let mut results = Vec::new();

    // (a) Log-write max: effectively no back-pressure and plenty of merge
    // threads, so KNs never wait.  One warm-up pass avoids charging the
    // first run for lazy page allocation of the fresh pool.
    {
        let warm = Arc::new(
            DpmNode::new(config(
                8,
                MediaProfile::dram(),
                false,
                usize::MAX / 2,
                total_entries,
                value_len,
            ))
            .unwrap(),
        );
        insert_workload(&warm, entries_per_kn / 4, value_len);
        warm.shutdown();
    }
    let dpm = Arc::new(
        DpmNode::new(config(
            16,
            MediaProfile::dram(),
            true,
            usize::MAX / 2,
            total_entries,
            value_len,
        ))
        .unwrap(),
    );
    let elapsed = insert_workload(&dpm, entries_per_kn, value_len);
    let log_write_max = total_entries as f64 / elapsed.as_secs_f64() / 1e6;
    dpm.shutdown();

    println!("# Figure 4 — DPM compute capacity (insert-only, {KNS} KNs, {total_entries} entries)");
    println!("log-write max: {log_write_max:.2} Mops/s");
    println!();
    println!(
        "{:<12} {:>16} {:>16} {:>16}",
        "DPM threads", "log-write Mops", "merge DRAM Mops", "merge PM Mops"
    );

    for threads in [1usize, 2, 4, 8, 16] {
        // (b) Log-write throughput with the default unmerged-segment
        // threshold: writers stall when merging cannot keep up.
        let dpm = Arc::new(
            DpmNode::new(config(
                threads,
                MediaProfile::dram(),
                true,
                2,
                total_entries,
                value_len,
            ))
            .unwrap(),
        );
        let elapsed = insert_workload(&dpm, entries_per_kn, value_len);
        let log_write = total_entries as f64 / elapsed.as_secs_f64() / 1e6;
        dpm.shutdown();

        // (c) Merge throughput on DRAM and PM profiles: pre-generate the log
        // segments, then time a sequential re-merge scan of every entry
        // (recover() walks and re-applies each sealed entry exactly like a
        // merge worker does).  Merging different KNs' logs is embarrassingly
        // parallel, so the k-thread rate is k x the single-thread rate,
        // capped by the number of per-KN logs.
        let mut merge = Vec::new();
        for profile in [MediaProfile::dram(), MediaProfile::optane()] {
            let dpm = Arc::new(
                DpmNode::new(config(
                    1,
                    profile,
                    true,
                    usize::MAX / 2,
                    total_entries,
                    value_len,
                ))
                .unwrap(),
            );
            insert_workload(&dpm, entries_per_kn, value_len);
            dpm.wait_until_all_merged();
            let start = Instant::now();
            let report = dpm.recover();
            let single_thread = report.entries_recovered as f64 / start.elapsed().as_secs_f64();
            let mops = single_thread * threads.min(KNS) as f64 / 1e6;
            merge.push(mops);
            dpm.shutdown();
        }

        println!(
            "{:<12} {:>16.2} {:>16.2} {:>16.2}",
            threads, log_write, merge[0], merge[1]
        );
        results.push(Fig4Point {
            series: "log-write".into(),
            dpm_threads: threads,
            mops: log_write,
        });
        results.push(Fig4Point {
            series: "merge-dram".into(),
            dpm_threads: threads,
            mops: merge[0],
        });
        results.push(Fig4Point {
            series: "merge-pm".into(),
            dpm_threads: threads,
            mops: merge[1],
        });
    }
    results.push(Fig4Point {
        series: "log-write-max".into(),
        dpm_threads: 0,
        mops: log_write_max,
    });
    write_json("fig4_dpm_compute", &results);
}
