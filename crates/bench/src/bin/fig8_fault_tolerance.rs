//! Figure 8: tolerating a KVS-node failure.
//!
//! A moderately-skewed 50/50 workload runs against a fixed cluster; one KN is
//! killed partway through.  Dinomo merges the failed node's pending logs and
//! repartitions ownership (sub-second); Dinomo-N must physically reshuffle
//! data (long throughput dip); Clover only updates membership.

use dinomo_bench::harness::{scale, write_json};
use dinomo_clover::{CloverConfig, CloverKvs};
use dinomo_cluster::{
    DriverConfig, ElasticKvs, EventKind, ScriptedEvent, SimulationDriver, TimelineRow,
};
use dinomo_core::{Kvs, KvsConfig, Variant};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_simnet::FabricConfig;
use dinomo_workload::{KeyDistribution, WorkloadConfig, WorkloadMix};
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Serialize)]
struct SystemTimeline {
    system: String,
    rows: Vec<TimelineRow>,
}

const KNS: usize = 8;

fn build_dinomo(variant: Variant, num_keys: u64, value_len: usize) -> Arc<dyn ElasticKvs> {
    let config = KvsConfig {
        variant,
        initial_kns: KNS,
        threads_per_kn: 2,
        cache_bytes_per_kn: (num_keys as usize * value_len) / 32,
        cache_kind: None,
        write_batch_ops: 8,
        dpm: DpmConfig {
            pool: PmemConfig::with_capacity(num_keys * (value_len as u64 + 96) * 8 + (64 << 20)),
            segment_bytes: 1 << 20,
            merge_threads: 2,
            index: PclhtConfig::for_capacity(num_keys as usize * 2),
            ..DpmConfig::default()
        },
        fabric: FabricConfig::with_injected_delay(1),
        ring_vnodes: 64,
        executor_queue_depth: 64,
        executor_min_sub_batch: 8,
    };
    Arc::new(Kvs::new(config).expect("cluster"))
}

fn build_clover(num_keys: u64, value_len: usize) -> Arc<dyn ElasticKvs> {
    let config = CloverConfig {
        initial_kns: KNS,
        threads_per_kn: 2,
        cache_bytes_per_kn: (num_keys as usize * value_len) / 32,
        pool: PmemConfig::with_capacity(num_keys * (value_len as u64 + 96) * 16 + (64 << 20)),
        fabric: FabricConfig::with_injected_delay(1),
        ..CloverConfig::default()
    };
    Arc::new(CloverKvs::new(config).expect("cluster"))
}

fn main() {
    let scale = scale();
    let num_keys = ((4_000.0 * scale) as u64).max(1_000);
    let value_len = 256usize;
    let epochs = ((24.0 * scale) as usize).clamp(16, 80);
    let fail_at = epochs / 3;

    let workload = WorkloadConfig {
        num_keys,
        key_len: 8,
        value_len,
        mix: WorkloadMix::WRITE_HEAVY_UPDATE,
        distribution: KeyDistribution::MODERATE_SKEW,
        seed: 8,
        max_scan_len: 16,
    };
    let events = vec![ScriptedEvent {
        at_epoch: fail_at,
        event: EventKind::FailRandomNode,
    }];

    println!("# Figure 8 — KN failure at epoch {fail_at} ({KNS} KNs)");
    let mut outputs = Vec::new();
    let systems: Vec<(String, Arc<dyn ElasticKvs>)> = vec![
        (
            "dinomo".into(),
            build_dinomo(Variant::Dinomo, num_keys, value_len),
        ),
        (
            "dinomo-n".into(),
            build_dinomo(Variant::DinomoN, num_keys, value_len),
        ),
        ("clover".into(), build_clover(num_keys, value_len)),
    ];
    for (name, store) in systems {
        let driver = SimulationDriver::new(
            store,
            DriverConfig {
                epoch_ms: 150,
                total_epochs: epochs,
                max_clients: 6,
                initial_clients: 6,
                workload,
                preload: true,
                key_sample_every: 8,
                batch_size: 1,
                ..DriverConfig::default()
            },
        );
        let rows = driver.run(&events);
        println!("\n## {name}");
        println!(
            "{:<6} {:>10} {:>10} {:>6}  actions",
            "epoch", "kops/s", "p99 ms", "KNs"
        );
        for r in &rows {
            println!(
                "{:<6} {:>10.1} {:>10.3} {:>6}  {}",
                r.epoch,
                r.throughput / 1e3,
                r.p99_latency_ms,
                r.num_nodes,
                r.actions.join("; ")
            );
        }
        let before: f64 =
            rows[..fail_at].iter().map(|r| r.throughput).sum::<f64>() / fail_at as f64;
        let dip = rows
            .iter()
            .skip(fail_at)
            .map(|r| r.throughput)
            .fold(f64::INFINITY, f64::min);
        let after: f64 = rows[fail_at + 1..]
            .iter()
            .map(|r| r.throughput)
            .sum::<f64>()
            / (rows.len() - fail_at - 1) as f64;
        let zero_epochs = rows.iter().skip(fail_at).filter(|r| r.ops == 0).count();
        println!(
            "-> avg before: {:.1} kops/s, worst epoch after failure: {:.1} kops/s ({:.0}% of before), avg after: {:.1} kops/s, zero-throughput epochs: {}",
            before / 1e3,
            dip / 1e3,
            100.0 * dip / before.max(1.0),
            after / 1e3,
            zero_epochs
        );
        outputs.push(SystemTimeline { system: name, rows });
    }
    write_json("fig8_fault_tolerance", &outputs);
}
