//! Whole-system saturation: closed-loop thread scaling with GC and
//! replication live.
//!
//! Every other bench isolates one subsystem; this one exists to catch the
//! serialization cliffs that only appear when everything runs at once —
//! the epoch shim reclaiming garbage from every thread, the compactor
//! relocating entries under foreground load, shared keys swinging their
//! indirection cells, and sixteen shard workers validating shortcut
//! addresses on every read. A global lock on any of those paths flattens
//! the thread-scaling curve; the gate asserts it stays near-linear.
//!
//! The cluster runs cache-less reads over a **sleeping** fabric-delay
//! mode, so each operation parks its thread for the modeled RDMA round
//! trips and concurrent client threads overlap their waits — thread
//! scaling is then limited only by real serialization inside the store
//! (locks, CAS retries, the merge path), not by host core count.

//!
//! With `--breakdown` (or `SAT_BREAKDOWN=1`) the bench instead profiles
//! the run: at 1, 8 and 16 client threads it isolates the per-stage and
//! per-lock time recorded by the metrics registry during the measured
//! window, prints the tables, names the dominant stage/lock at 16
//! threads — the data-backed answer to "what is the next scaling
//! ceiling" — and writes the registry snapshot to
//! `target/bench-results/metrics_snapshot.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::breakdown::{
    print_profile_rows, profile_baseline, profile_since, write_metrics_snapshot,
};
use dinomo_bench::harness::{
    measure_saturation_throughput, median, saturation_cluster, write_bench_record,
};

const KEYS: u64 = 2_000;
const REPLICATED: u64 = 8;
const OPS_PER_THREAD: u64 = 400;
const THREAD_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];
const GATE_THREADS: usize = 8;
const GATE_SPEEDUP: f64 = 3.0;

/// Median aggregate throughput per thread count over interleaved rounds
/// (so time-varying host noise hits every thread count equally).
fn measure_sweep(kvs: &dinomo_core::Kvs, rounds: usize) -> Vec<(usize, f64)> {
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); THREAD_SWEEP.len()];
    for _ in 0..rounds {
        for (i, &threads) in THREAD_SWEEP.iter().enumerate() {
            samples[i].push(measure_saturation_throughput(
                kvs,
                threads,
                KEYS,
                OPS_PER_THREAD,
            ));
        }
    }
    THREAD_SWEEP
        .iter()
        .zip(&samples)
        .map(|(&threads, s)| (threads, median(s)))
        .collect()
}

fn speedup_at(sweep: &[(usize, f64)], threads: usize) -> f64 {
    let base = sweep.iter().find(|(t, _)| *t == 1).map(|(_, v)| *v);
    let at = sweep.iter().find(|(t, _)| *t == threads).map(|(_, v)| *v);
    match (base, at) {
        (Some(b), Some(v)) if b > 0.0 => v / b,
        _ => 0.0,
    }
}

const BREAKDOWN_SWEEP: [usize; 3] = [1, 8, 16];

/// `true` when the profiling mode was requested (Criterion's shim passes
/// unrecognized flags through untouched).
fn breakdown_mode() -> bool {
    std::env::args().any(|a| a == "--breakdown")
        || std::env::var_os("SAT_BREAKDOWN").is_some_and(|v| v != "0")
}

/// Profile the saturation workload: per-stage / per-lock time at each
/// thread count (windowed, so preload and other thread counts don't
/// contaminate the tables), verdict at 16 threads, JSON snapshot.
fn run_breakdown(kvs: &dinomo_core::Kvs) {
    let registry = kvs.metrics();
    let mut verdict: Option<(dinomo_bench::ProfileRow, f64)> = None;
    for &threads in &BREAKDOWN_SWEEP {
        let base = profile_baseline(&registry);
        let tput = measure_saturation_throughput(kvs, threads, KEYS, OPS_PER_THREAD);
        let rows = profile_since(&registry, &base);
        println!("\nbreakdown at {threads} threads: {tput:.0} ops/s aggregate");
        print_profile_rows(&format!("{threads} threads"), &rows);
        if threads == BREAKDOWN_SWEEP[BREAKDOWN_SWEEP.len() - 1] {
            let total: f64 = rows.iter().map(|r| r.total_ns()).sum();
            verdict = rows
                .into_iter()
                .next()
                .map(|dom| (dom, if total > 0.0 { total } else { 1.0 }));
        }
    }
    match verdict {
        Some((dom, total)) => println!(
            "\nverdict: at 16 threads the dominant stage/lock is {} \
             ({:.1}% of accounted stage/lock time, p99 {})",
            dom.name,
            100.0 * dom.total_ns() / total,
            dinomo_bench::breakdown::fmt_ns(dom.summary.p99_ns as f64),
        ),
        None => println!("\nverdict: no stage/lock samples recorded at 16 threads"),
    }
    write_metrics_snapshot(&registry.snapshot());
}

fn bench_saturation(c: &mut Criterion) {
    let kvs = saturation_cluster(KEYS, REPLICATED);

    // Warm-up: one full-width round so first-touch costs (lazy index
    // buckets, compactor destination segments) land outside the sweep.
    measure_saturation_throughput(&kvs, GATE_THREADS, KEYS, OPS_PER_THREAD);

    if breakdown_mode() {
        run_breakdown(&kvs);
        return;
    }

    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    group.bench_function(format!("closed_loop_{GATE_THREADS}_threads"), |b| {
        b.iter(|| measure_saturation_throughput(&kvs, GATE_THREADS, KEYS, OPS_PER_THREAD / 4))
    });
    group.finish();

    // The gated sweep. A failing measurement is re-taken a couple of
    // times (shared CI runners are noisy); with `SAT_BENCH_SOFT=1` (the
    // merge-gating CI job) a persistent miss only warns, while the
    // nightly perf job keeps the hard assertion.
    let mut sweep = measure_sweep(&kvs, 3);
    let mut speedup = speedup_at(&sweep, GATE_THREADS);
    for _ in 0..2 {
        if speedup >= GATE_SPEEDUP {
            break;
        }
        sweep = measure_sweep(&kvs, 3);
        speedup = speedup_at(&sweep, GATE_THREADS);
    }
    for (threads, tput) in &sweep {
        println!(
            "saturation, {threads:>2} client threads: {tput:>9.0} ops/s aggregate \
             ({:.2}x the 1-thread median)",
            speedup_at(&sweep, *threads)
        );
    }
    let stats = kvs.stats();
    println!(
        "contention after sweep: {} cell-swing races, {} segments compacted \
         ({} allocated, {} freed)",
        stats.dpm.cell_registry_waits,
        stats.dpm.segments_compacted,
        stats.dpm.segments_allocated,
        stats.dpm.segments_freed
    );

    // Machine-readable medians for the CI perf-trajectory artifact.
    let mut metrics: Vec<(String, f64)> = sweep
        .iter()
        .map(|(t, v)| (format!("ops_per_sec_{t}_threads"), *v))
        .collect();
    metrics.push(("speedup_at_8_threads".to_string(), speedup));
    metrics.push(("speedup_at_4_threads".to_string(), speedup_at(&sweep, 4)));
    metrics.push(("gate_speedup".to_string(), GATE_SPEEDUP));
    metrics.push((
        "cell_swing_races".to_string(),
        stats.dpm.cell_registry_waits as f64,
    ));
    let named: Vec<(&str, f64)> = metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    write_bench_record("saturation_bench", &named);

    let soft = std::env::var_os("SAT_BENCH_SOFT").is_some_and(|v| v != "0");
    if speedup < GATE_SPEEDUP && soft {
        eprintln!(
            "warning: saturation throughput at {GATE_THREADS} threads reached only \
             {speedup:.2}x the 1-thread median (gate {GATE_SPEEDUP}x); not failing \
             because SAT_BENCH_SOFT is set"
        );
    } else {
        assert!(
            speedup >= GATE_SPEEDUP,
            "with GC and replication live, {GATE_THREADS} client threads must \
             deliver at least {GATE_SPEEDUP}x the 1-thread throughput \
             (near-linear scaling), got {speedup:.2}x"
        );
    }
}

criterion_group!(benches, bench_saturation);
criterion_main!(benches);
