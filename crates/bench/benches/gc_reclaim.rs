//! Log-cleaning reclamation gate: under the skewed-overwrite preset with
//! one long-lived ("pin") key interleaved into every segment's worth of
//! churn, the pre-compactor policy (`run_gc`, all-entries-dead) can free
//! **zero** segments — every segment keeps at least one live entry — so
//! space amplification grows with write history. The compactor must
//! relocate the pins, reclaim the victims, and bring allocated ÷ live
//! bytes under the gate bound.
//!
//! Like the other acceptance benches, the assertion is soft on the
//! merge-gating CI job (`GC_BENCH_SOFT=1`) and hard on the nightly perf
//! job; medians land in `target/bench-results/gc_reclaim.json` for the
//! perf-trajectory artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::harness::write_bench_record;
use dinomo_core::{GcConfig, Kvs, Op, Reply};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_workload::{Operation, WorkloadConfig, WorkloadGenerator};

/// Space amplification the compactor must stay under.
const AMP_BOUND: f64 = 3.0;
const OPS: usize = 30_000;
const BATCH: usize = 64;
/// One unique pin key per this many workload ops (≈ 2 pins per 64 KiB
/// segment at 256-byte values, so no segment is ever fully dead).
const PIN_EVERY: usize = 100;

fn gc_cluster() -> Kvs {
    // Single node / single shard so the log layout is deterministic; the
    // compactor itself is what's under test, not request routing.
    Kvs::builder()
        .small_for_tests()
        .initial_kns(1)
        .threads_per_kn(1)
        .write_batch_ops(8)
        .dpm(DpmConfig {
            pool: PmemConfig::with_capacity(96 << 20),
            segment_bytes: 64 << 10,
            index: PclhtConfig::for_capacity(4_096),
            ..DpmConfig::small_for_tests()
        })
        .gc(GcConfig {
            background: false,
            dead_fraction: 0.25,
            ..GcConfig::aggressive()
        })
        .build()
        .unwrap()
}

fn space_amplification(kvs: &Kvs) -> f64 {
    let dpm = kvs.stats().dpm;
    dpm.segment_bytes_allocated as f64 / dpm.live_bytes.max(1) as f64
}

/// Drive the skewed-overwrite preset with interleaved pin keys; returns
/// the number of pins written.
fn run_workload(kvs: &Kvs) -> usize {
    let client = kvs.client();
    let mut generator = WorkloadGenerator::new(WorkloadConfig::skewed_overwrite(48, 256, 0xD1_40));
    for (key, value) in generator.load_phase() {
        client.insert(&key, &value).unwrap();
    }
    let mut pins = 0usize;
    let mut issued = 0usize;
    while issued < OPS {
        let mut ops: Vec<Op> = Vec::with_capacity(BATCH + 1);
        for op in generator.next_batch(BATCH) {
            if issued.is_multiple_of(PIN_EVERY) {
                ops.push(Op::insert(format!("pin{pins:05}"), [0xCC; 64]));
                pins += 1;
            }
            issued += 1;
            ops.push(match op {
                Operation::Read(k) => Op::lookup(k),
                Operation::Update(k, v) | Operation::Insert(k, v) => Op::update(k, v),
                Operation::Delete(k) => Op::delete(k),
                Operation::Scan(..) => unreachable!("SKEWED_OVERWRITE has no scans"),
            });
        }
        let replies = client.execute(ops);
        assert!(replies.iter().all(Reply::is_ok), "workload op failed");
    }
    kvs.quiesce().unwrap();
    pins
}

fn bench_gc_reclaim(c: &mut Criterion) {
    let kvs = gc_cluster();
    let pins = run_workload(&kvs);

    let amp_loaded = space_amplification(&kvs);
    let run_gc_freed = kvs.dpm().run_gc();
    let amp_after_run_gc = space_amplification(&kvs);

    // Compact until a pass stops making progress.
    let mut compacted = 0u64;
    loop {
        let pass = kvs.dpm().compact_once();
        compacted += pass.segments_compacted;
        if pass.segments_compacted == 0 && pass.entries_relocated == 0 {
            break;
        }
    }
    let stats = kvs.stats().dpm;
    let amp_after_compaction = space_amplification(&kvs);
    println!(
        "gc_reclaim: run_gc freed {run_gc_freed}, compactor freed {compacted} \
         (amp {amp_loaded:.2} -> {amp_after_run_gc:.2} -> {amp_after_compaction:.2}, \
         {} bytes relocated, gate ≤ {AMP_BOUND})",
        stats.bytes_relocated
    );

    // Spot-check relocated data: every pin still reads its value.
    let client = kvs.client();
    for pin in (0..pins).step_by(37) {
        assert_eq!(
            client.lookup(format!("pin{pin:05}").as_bytes()).unwrap(),
            Some(vec![0xCC; 64]),
            "pin{pin:05} lost across compaction"
        );
    }

    write_bench_record(
        "gc_reclaim",
        &[
            ("segments_freed_by_run_gc", run_gc_freed as f64),
            ("segments_compacted", compacted as f64),
            ("bytes_relocated", stats.bytes_relocated as f64),
            ("space_amp_loaded", amp_loaded),
            ("space_amp_after_run_gc", amp_after_run_gc),
            ("space_amp_after_compaction", amp_after_compaction),
            ("gate_amp_bound", AMP_BOUND),
        ],
    );

    let soft = std::env::var_os("GC_BENCH_SOFT").is_some_and(|v| v != "0");
    let gate = |ok: bool, message: String| {
        if !ok && soft {
            eprintln!("warning: {message}; not failing because GC_BENCH_SOFT is set");
        } else {
            assert!(ok, "{message}");
        }
    };
    gate(
        run_gc_freed == 0,
        format!(
            "every segment carries a pin key, so the all-dead policy must \
             free nothing (freed {run_gc_freed})"
        ),
    );
    gate(
        compacted >= 1,
        format!("the compactor must reclaim pinned-under-old-policy segments (freed {compacted})"),
    );
    gate(
        amp_after_compaction <= AMP_BOUND,
        format!(
            "space amplification must end under {AMP_BOUND} \
             (got {amp_after_compaction:.2}, was {amp_after_run_gc:.2} under run_gc alone)"
        ),
    );

    // Steady-state pass cost (victim scan over a clean store), for the
    // perf trajectory.
    let mut group = c.benchmark_group("gc_reclaim");
    group.sample_size(10);
    group.bench_function("compact_once_clean", |b| {
        b.iter(|| std::hint::black_box(kvs.dpm().compact_once()))
    });
    group.finish();
}

criterion_group!(benches, bench_gc_reclaim);
criterion_main!(benches);
