//! End-to-end micro-benchmarks of the client operation path for Dinomo and
//! the Clover baseline (cache-hit reads, writes, and mixed traffic).

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_clover::{CloverConfig, CloverKvs};
use dinomo_core::{Kvs, KvsConfig, Variant};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_workload::key_for;

const KEYS: u64 = 5_000;
const VALUE: usize = 512;
/// Updates use a smaller payload so long Criterion runs do not exhaust the
/// simulated PM pool with dead log entries between GC passes.
const UPDATE_VALUE: usize = 64;

fn dinomo(variant: Variant) -> Kvs {
    let config = KvsConfig {
        variant,
        initial_kns: 4,
        threads_per_kn: 2,
        cache_bytes_per_kn: 8 << 20,
        cache_kind: None,
        write_batch_ops: 8,
        dpm: DpmConfig {
            pool: PmemConfig::with_capacity(512 << 20),
            segment_bytes: 2 << 20,
            merge_threads: 2,
            index: PclhtConfig::for_capacity(KEYS as usize * 2),
            ..DpmConfig::default()
        },
        ..KvsConfig::default()
    };
    let kvs = Kvs::new(config).unwrap();
    let client = kvs.client();
    for i in 0..KEYS {
        client.insert(&key_for(i, 8), &vec![1u8; VALUE]).unwrap();
    }
    kvs.quiesce().unwrap();
    kvs
}

fn clover() -> CloverKvs {
    let config = CloverConfig {
        initial_kns: 4,
        threads_per_kn: 2,
        cache_bytes_per_kn: 8 << 20,
        // Clover never reclaims old versions, so give it head-room for the
        // updates a long Criterion run performs.
        pool: PmemConfig::with_capacity(768 << 20),
        ..CloverConfig::default()
    };
    let kvs = CloverKvs::new(config).unwrap();
    let client = kvs.client();
    for i in 0..KEYS {
        client.insert(&key_for(i, 8), &vec![1u8; VALUE]).unwrap();
    }
    kvs
}

fn bench_kvs(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_ops");
    group.sample_size(15);

    for variant in [Variant::Dinomo, Variant::DinomoS] {
        let kvs = dinomo(variant);
        let client = kvs.client();
        // Warm the caches.
        for i in 0..KEYS {
            client.lookup(&key_for(i, 8)).unwrap();
        }
        group.bench_function(format!("{}_read", variant.name()), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 31) % KEYS;
                std::hint::black_box(client.lookup(&key_for(i, 8)).unwrap())
            });
        });
        group.bench_function(format!("{}_update", variant.name()), |b| {
            let mut i = 0u64;
            let mut since_gc = 0u64;
            b.iter(|| {
                i = (i + 31) % KEYS;
                since_gc += 1;
                if since_gc.is_multiple_of(50_000) {
                    // Reclaim fully-superseded log segments, as the DPM's GC
                    // thread would do continuously in the real system.
                    kvs.quiesce().unwrap();
                    kvs.dpm().run_gc();
                }
                client.update(&key_for(i, 8), &[2u8; UPDATE_VALUE]).unwrap()
            });
        });
    }

    {
        let kvs = clover();
        let client = kvs.client();
        for i in 0..KEYS {
            client.lookup(&key_for(i, 8)).unwrap();
        }
        group.bench_function("clover_read", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 31) % KEYS;
                std::hint::black_box(client.lookup(&key_for(i, 8)).unwrap())
            });
        });
        group.bench_function("clover_update", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 31) % KEYS;
                client.update(&key_for(i, 8), &[2u8; UPDATE_VALUE]).unwrap()
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_kvs);
criterion_main!(benches);
