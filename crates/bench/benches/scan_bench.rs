//! Range-scan acceptance gate: YCSB-E (95% scan / 5% insert) driven
//! through the batched client against a multi-KN cluster, so every scan
//! exercises the full path — per-node ordered-index snapshot + unmerged
//! overlay merge, cluster-wide fan-out, sorted-partial merge and
//! truncation. Correctness (sorted, bounded, non-empty results) is always
//! a hard assertion; the latency gate is soft on the merge-gating CI job
//! (`SCAN_BENCH_SOFT=1`) and hard on the nightly perf job. Medians land in
//! `target/bench-results/scan_bench.json` for the perf-trajectory
//! artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::harness::{median, scale, write_bench_record};
use dinomo_core::Kvs;
use dinomo_workload::{KeyDistribution, Operation, WorkloadConfig, WorkloadGenerator, WorkloadMix};
use std::time::Instant;

const MAX_SCAN_LEN: usize = 16;
/// Upper bound on the median scan latency (milliseconds) over the
/// simulated fabric. Generous on purpose: the gate exists to catch
/// order-of-magnitude regressions (a scan degenerating into per-key
/// lookups, a snapshot walk holding a lock), not machine jitter.
const GATE_MEDIAN_SCAN_MS: f64 = 5.0;

fn scan_cluster() -> Kvs {
    // Three KNs so every scan fans out and merges sorted partials.
    Kvs::builder()
        .small_for_tests()
        .initial_kns(3)
        .build()
        .unwrap()
}

fn bench_scan(c: &mut Criterion) {
    let s = scale();
    let num_keys = ((2_000.0 * s) as u64).max(500);
    let total_ops = ((12_000.0 * s) as usize).max(1_500);

    let kvs = scan_cluster();
    let client = kvs.client();
    let config = WorkloadConfig {
        num_keys,
        key_len: 8,
        value_len: 128,
        mix: WorkloadMix::YCSB_E,
        distribution: KeyDistribution::MODERATE_SKEW,
        seed: 0xE5,
        max_scan_len: MAX_SCAN_LEN,
    };
    let mut generator = WorkloadGenerator::new(config);
    for (key, value) in generator.load_phase() {
        client.insert(&key, &value).unwrap();
    }
    // Half the load reaches the ordered index before the run, so scans
    // merge tree entries with the unmerged overlay the inserts keep
    // refilling.
    kvs.flush_all().unwrap();

    let mut scan_ms: Vec<f64> = Vec::with_capacity(total_ops);
    let mut pairs_returned = 0usize;
    let mut empty_scans = 0usize;
    let mut inserts = 0usize;
    let run_start = Instant::now();
    for op in (0..total_ops).map(|_| generator.next_op()) {
        match op {
            Operation::Scan(start, n) => {
                let begin = Instant::now();
                let pairs = client.scan(&start, n).unwrap();
                scan_ms.push(begin.elapsed().as_secs_f64() * 1e3);
                // Correctness is never soft: sorted, in range, bounded.
                assert!(pairs.len() <= n, "scan returned more than its budget");
                assert!(
                    pairs.windows(2).all(|w| w[0].0 < w[1].0),
                    "scan results must be strictly key-ordered"
                );
                assert!(
                    pairs
                        .first()
                        .is_none_or(|(k, _)| k.as_slice() >= start.as_slice()),
                    "scan returned a key before its start"
                );
                pairs_returned += pairs.len();
                empty_scans += usize::from(pairs.is_empty());
            }
            Operation::Insert(key, value) => {
                client.insert(&key, &value).unwrap();
                inserts += 1;
            }
            Operation::Read(key) => {
                client.lookup(&key).unwrap();
            }
            Operation::Update(key, value) => {
                client.update(&key, &value).unwrap();
            }
            Operation::Delete(key) => {
                client.delete(&key).unwrap();
            }
        }
    }
    let elapsed = run_start.elapsed().as_secs_f64();

    let scans = scan_ms.len();
    let ops_per_sec = total_ops as f64 / elapsed;
    let scans_per_sec = scans as f64 / elapsed;
    let med_ms = median(&scan_ms);
    let avg_pairs = pairs_returned as f64 / scans.max(1) as f64;
    println!(
        "scan_bench: YCSB-E {total_ops} ops ({scans} scans, {inserts} inserts) in \
         {elapsed:.2}s — {ops_per_sec:.0} ops/s, {scans_per_sec:.0} scans/s, \
         median {med_ms:.3} ms/scan, {avg_pairs:.1} pairs/scan, {empty_scans} empty \
         (gate ≤ {GATE_MEDIAN_SCAN_MS} ms)"
    );

    write_bench_record(
        "scan_bench",
        &[
            ("ycsb_e_ops_per_sec", ops_per_sec),
            ("scans_per_sec", scans_per_sec),
            ("median_scan_ms", med_ms),
            ("avg_pairs_per_scan", avg_pairs),
            ("max_scan_len", MAX_SCAN_LEN as f64),
            ("num_keys", num_keys as f64),
            ("gate_median_scan_ms", GATE_MEDIAN_SCAN_MS),
        ],
    );

    // Scan starts are drawn from loaded keys and YCSB-E never deletes, so
    // a scan that comes back empty skipped its own start key.
    assert_eq!(empty_scans, 0, "no YCSB-E scan may come back empty");

    let soft = std::env::var_os("SCAN_BENCH_SOFT").is_some_and(|v| v != "0");
    let gate = |ok: bool, message: String| {
        if !ok && soft {
            eprintln!("warning: {message}; not failing because SCAN_BENCH_SOFT is set");
        } else {
            assert!(ok, "{message}");
        }
    };
    gate(
        med_ms <= GATE_MEDIAN_SCAN_MS,
        format!("median scan latency {med_ms:.3} ms exceeds the {GATE_MEDIAN_SCAN_MS} ms gate"),
    );

    // Steady-state per-scan cost for the perf trajectory: a warm fixed
    // start over the loaded key space.
    let start = dinomo_workload::key_for(num_keys / 2, 8);
    let mut group = c.benchmark_group("scan_bench");
    group.sample_size(20);
    group.bench_function("scan16_warm", |b| {
        b.iter(|| std::hint::black_box(client.scan(&start, MAX_SCAN_LEN).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
