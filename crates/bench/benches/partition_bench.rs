//! Micro-benchmarks of the ownership-partitioning metadata: ring lookups and
//! the cost of a membership change (the operation Dinomo performs instead of
//! physically reshuffling data).

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_partition::{key_hash, HashRing, OwnershipTable};

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(30);

    group.bench_function("key_hash_8b", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(key_hash(&i.to_be_bytes()))
        });
    });

    group.bench_function("ring_owner_lookup_16_nodes", |b| {
        let mut ring = HashRing::new(64);
        for n in 0..16 {
            ring.add_node(n);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(ring.owner(key_hash(&i.to_be_bytes())))
        });
    });

    group.bench_function("ownership_owners_with_replication", |b| {
        let mut table = OwnershipTable::new(64, 8);
        for n in 0..16 {
            table.add_kn(n);
        }
        for i in 0..16u64 {
            table.replicate(&i.to_be_bytes(), 4);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(table.owners(&(i % 64).to_be_bytes()))
        });
    });

    group.bench_function("add_kn_repartition_plan", |b| {
        b.iter(|| {
            let mut before = HashRing::new(64);
            for n in 0..15 {
                before.add_node(n);
            }
            let mut after = before.clone();
            after.add_node(15);
            std::hint::black_box(before.changes_to(&after))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
