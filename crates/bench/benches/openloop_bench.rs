//! Open-loop latency vs offered load over the 4-KN saturation cluster.
//!
//! The closed-loop `saturation_bench` answers "how much can the cluster
//! do?"; this bench answers the question every figure in the paper is
//! actually drawn from: "what latency does a client population see at a
//! given *offered* rate?" — measured coordinated-omission-free, with each
//! operation's latency taken from its scheduled arrival time (see
//! `dinomo_bench::openloop`).
//!
//! The sweep calibrates the cluster's closed-loop peak, then offers
//! fractions of it through the open-loop driver and reports
//! p50/p99/p999 per rate. The **knee** is the last offered rate where
//! p99 stays at or under the SLO *and* achieved throughput keeps up with
//! (≥ 95 % of) offered — past the knee the arrival backlog grows without
//! bound and the honest percentiles explode, which is exactly the shape
//! the latency-vs-load curve must show.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::breakdown::{fmt_ns, print_profile_rows, profile_baseline, profile_since};
use dinomo_bench::harness::{
    measure_saturation_throughput, saturation_cluster, write_bench_record, write_json,
};
use dinomo_bench::openloop::{run_open_loop, OpenLoopConfig, OpenLoopPlan, OpenLoopReport};
use dinomo_workload::{ArrivalProcess, KeyDistribution, Operation};
use serde::Serialize;

const KEYS: u64 = 2_000;
const REPLICATED: u64 = 8;
const WORKERS: usize = 16;
const SESSIONS: u32 = 20_000;
/// Offered-load sweep as fractions of the calibrated closed-loop peak.
const RATE_FRACTIONS: [f64; 6] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2];
/// Each rate runs long enough for queues to reveal themselves.
const RUN_SECONDS: f64 = 1.5;
/// p99 service-level objective for the knee.
const SLO_MS: f64 = 20.0;
/// Knee criterion: achieved must keep up with offered.
const ACHIEVED_FRACTION: f64 = 0.95;
/// Gate: the knee must sit at or above this fraction of the closed-loop
/// peak, or open-loop latency has regressed far below cluster capacity.
const KNEE_GATE_FRACTION: f64 = 0.25;

/// One row of the latency-vs-offered-load curve.
#[derive(Debug, Clone, Copy, Serialize)]
struct SweepRow {
    offered_ops_per_sec: f64,
    achieved_ops_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    send_p99_ms: f64,
    slo_attainment: f64,
}

fn open_loop_config(offered: f64) -> OpenLoopConfig {
    OpenLoopConfig {
        process: ArrivalProcess::Poisson,
        offered_rate: offered,
        total_ops: ((offered * RUN_SECONDS) as u64).clamp(2_000, 200_000),
        sessions: SESSIONS,
        workers: WORKERS,
        num_keys: KEYS,
        // Mirror the closed-loop saturation mix: 1 overwrite per 4 ops,
        // so the compactor has dead bytes to clean throughout.
        read_fraction: 0.75,
        value_len: 128,
        distribution: KeyDistribution::MODERATE_SKEW,
        seed: 0x09_E7,
    }
}

/// Run one offered rate against the cluster. `Busy` backpressure is
/// retried — in an open-loop world a rejected op is still an op the
/// client offered, and its retries all bill to its scheduled arrival.
fn run_rate(kvs: &dinomo_core::Kvs, offered: f64) -> OpenLoopReport {
    let plan = OpenLoopPlan::new(open_loop_config(offered));
    run_open_loop(&plan, |_worker| {
        let client = kvs.client();
        move |op: Operation| match op {
            Operation::Read(key) => {
                let mut tries = 0;
                while client.lookup(&key).is_err() {
                    tries += 1;
                    assert!(tries < 1000, "lookup kept failing");
                }
            }
            Operation::Update(key, value) => {
                let mut tries = 0;
                while client.update(&key, &value).is_err() {
                    tries += 1;
                    assert!(tries < 1000, "update kept failing");
                }
            }
            other => panic!("open-loop mix produced {other:?}"),
        }
    })
}

fn row_of(report: &OpenLoopReport) -> SweepRow {
    let sched = report.scheduled_summary();
    let send = report.send_summary();
    SweepRow {
        offered_ops_per_sec: report.offered_rate,
        achieved_ops_per_sec: report.achieved_rate,
        p50_ms: sched.p50_ms,
        p99_ms: sched.p99_ms,
        p999_ms: sched.p999_ms,
        send_p99_ms: send.p99_ms,
        slo_attainment: report.slo_attainment(std::time::Duration::from_millis(SLO_MS as u64)),
    }
}

/// The knee: the last swept rate that met the SLO at full delivery.
fn knee_of(rows: &[SweepRow]) -> Option<SweepRow> {
    rows.iter()
        .rfind(|r| {
            r.p99_ms <= SLO_MS
                && r.achieved_ops_per_sec >= ACHIEVED_FRACTION * r.offered_ops_per_sec
        })
        .copied()
}

fn bench_openloop(c: &mut Criterion) {
    let kvs = saturation_cluster(KEYS, REPLICATED);

    // Calibrate the closed-loop peak at the worker count so the sweep
    // brackets the cluster's actual capacity instead of hard-coding one.
    measure_saturation_throughput(&kvs, WORKERS, KEYS, 200); // warm-up
    let peak = measure_saturation_throughput(&kvs, WORKERS, KEYS, 400);
    println!("open-loop sweep: closed-loop peak at {WORKERS} workers = {peak:.0} ops/s");

    let mut group = c.benchmark_group("openloop");
    group.sample_size(10);
    group.bench_function("poisson_half_peak", |b| {
        b.iter(|| run_rate(&kvs, 0.5 * peak).ops)
    });
    group.finish();

    // The gated sweep, retried a couple of times on a miss (shared CI
    // runners are noisy); `OPENLOOP_BENCH_SOFT=1` (the merge-gating CI
    // job) downgrades a persistent miss to a warning, the nightly perf
    // job keeps the hard assertion.
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut knee: Option<SweepRow> = None;
    for _attempt in 0..3 {
        rows = RATE_FRACTIONS
            .iter()
            .map(|f| row_of(&run_rate(&kvs, f * peak)))
            .collect();
        knee = knee_of(&rows);
        if knee.is_some_and(|k| k.offered_ops_per_sec >= KNEE_GATE_FRACTION * peak) {
            break;
        }
    }

    for r in &rows {
        println!(
            "openloop, offered {:>8.0} ops/s: achieved {:>8.0}, p50 {:>8.3} ms, \
             p99 {:>8.3} ms, p999 {:>8.3} ms (send-time p99 {:>7.3} ms), \
             SLO({SLO_MS} ms) attainment {:.3}",
            r.offered_ops_per_sec,
            r.achieved_ops_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.send_p99_ms,
            r.slo_attainment
        );
    }
    match &knee {
        Some(k) => println!(
            "knee: {:.0} ops/s offered ({:.2}x the closed-loop peak) with p99 {:.3} ms",
            k.offered_ops_per_sec,
            k.offered_ops_per_sec / peak,
            k.p99_ms
        ),
        None => println!("knee: none found — every swept rate violated the SLO"),
    }

    // Profile the knee: re-run the knee rate over a windowed registry
    // baseline and print where the time goes — which lifecycle stage or
    // lock a client's p99 is actually made of at the highest rate the
    // cluster still delivers within SLO.
    if let Some(k) = &knee {
        let registry = kvs.metrics();
        let base = profile_baseline(&registry);
        run_rate(&kvs, k.offered_ops_per_sec);
        let profile = profile_since(&registry, &base);
        println!(
            "\nstage/lock profile at the knee ({:.0} ops/s offered):",
            k.offered_ops_per_sec
        );
        print_profile_rows("knee", &profile);
        if let Some(dom) = profile.first() {
            println!(
                "knee dominant stage/lock: {} (p99 {})",
                dom.name,
                fmt_ns(dom.summary.p99_ns as f64)
            );
        }
    }

    // Full curve for EXPERIMENTS.md plus flat medians for the CI
    // perf-trajectory artifact.
    write_json("openloop_sweep", &rows);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for (f, r) in RATE_FRACTIONS.iter().zip(&rows) {
        let pct = (f * 100.0) as u64;
        metrics.push((
            format!("offered_{pct}pct_ops_per_sec"),
            r.offered_ops_per_sec,
        ));
        metrics.push((
            format!("achieved_{pct}pct_ops_per_sec"),
            r.achieved_ops_per_sec,
        ));
        metrics.push((format!("p50_ms_at_{pct}pct"), r.p50_ms));
        metrics.push((format!("p99_ms_at_{pct}pct"), r.p99_ms));
        metrics.push((format!("p999_ms_at_{pct}pct"), r.p999_ms));
    }
    metrics.push((
        "knee_ops_per_sec".to_string(),
        knee.map_or(0.0, |k| k.offered_ops_per_sec),
    ));
    metrics.push(("closed_loop_peak_ops_per_sec".to_string(), peak));
    metrics.push(("slo_ms".to_string(), SLO_MS));
    let named: Vec<(&str, f64)> = metrics.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    write_bench_record("openloop_bench", &named);

    let knee_rate = knee.map_or(0.0, |k| k.offered_ops_per_sec);
    let soft = std::env::var_os("OPENLOOP_BENCH_SOFT").is_some_and(|v| v != "0");
    if knee_rate < KNEE_GATE_FRACTION * peak && soft {
        eprintln!(
            "warning: open-loop knee at {knee_rate:.0} ops/s is below \
             {KNEE_GATE_FRACTION}x the closed-loop peak ({peak:.0} ops/s); not \
             failing because OPENLOOP_BENCH_SOFT is set"
        );
    } else {
        assert!(
            knee_rate >= KNEE_GATE_FRACTION * peak,
            "the open-loop knee (last rate with p99 <= {SLO_MS} ms and achieved >= \
             {ACHIEVED_FRACTION}x offered) must reach at least {KNEE_GATE_FRACTION}x \
             the closed-loop peak of {peak:.0} ops/s, got {knee_rate:.0} ops/s"
        );
    }
}

criterion_group!(benches, bench_openloop);
criterion_main!(benches);
