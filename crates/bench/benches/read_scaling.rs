//! Multi-threaded read-throughput benchmark of the P-CLHT's lock-free
//! (epoch-pinned) read path versus the read-lock baseline it replaced.
//!
//! Before epoch-based reclamation, every lookup held the table's state
//! read-lock across its traversal so a concurrent resize could not free the
//! bucket array mid-walk. That lock acquisition is a read-modify-write on
//! one shared cache line, so reader throughput flattens as threads are
//! added. The epoch scheme replaces it with a thread-local pin (two
//! uncontended atomic stores); this bench demonstrates the resulting reader
//! scaling. The baseline is reproduced faithfully by wrapping each lookup
//! in an external `parking_lot::RwLock` read guard — the same lock type and
//! acquisition count the old read path paid.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::harness::write_bench_record;
use dinomo_pclht::{pin, Pclht, PclhtConfig};
use dinomo_pmem::{PmemConfig, PmemPool};
use parking_lot::RwLock;
use std::sync::{Arc, Barrier};
use std::time::Instant;

const KEYS: u64 = 100_000;
const OPS_PER_THREAD: u64 = 60_000;
const GATE_THREADS: u64 = 4;

fn prefilled() -> Arc<Pclht> {
    let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(128 << 20)));
    let table = Pclht::new(pool, PclhtConfig::for_capacity(KEYS as usize * 2)).unwrap();
    for i in 0..KEYS {
        table.insert(i, i + 1).unwrap();
    }
    Arc::new(table)
}

/// Aggregate reader throughput (lookups/sec) with `threads` concurrent
/// readers. With `read_lock`, every lookup holds the lock's read guard
/// across the call, reproducing the pre-epoch read path; without it, each
/// thread pins one epoch guard per sweep of the key space (the batched
/// idiom the `*_in` read variants exist for).
fn read_throughput(table: &Arc<Pclht>, threads: u64, read_lock: Option<&Arc<RwLock<()>>>) -> f64 {
    let barrier = Arc::new(Barrier::new(threads as usize + 1));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let table = Arc::clone(table);
            let barrier = Arc::clone(&barrier);
            let lock = read_lock.cloned();
            std::thread::spawn(move || {
                let mut i = w * 17 % KEYS;
                barrier.wait();
                let mut done = 0u64;
                while done < OPS_PER_THREAD {
                    match &lock {
                        Some(lock) => {
                            // Pre-epoch scheme: one shared read-lock
                            // acquisition per lookup, held across traversal.
                            for _ in 0..1_000 {
                                i = (i + 7) % KEYS;
                                let guard = lock.read();
                                std::hint::black_box(table.get_first(i));
                                drop(guard);
                            }
                        }
                        None => {
                            // Epoch scheme: one pin per 1k-lookup sweep.
                            let guard = pin();
                            for _ in 0..1_000 {
                                i = (i + 7) % KEYS;
                                std::hint::black_box(table.get_in(&guard, i, |_| true));
                            }
                        }
                    }
                    done += 1_000;
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for w in workers {
        w.join().unwrap();
    }
    (threads * OPS_PER_THREAD) as f64 / start.elapsed().as_secs_f64()
}

/// Median epoch / median baseline throughput at `threads` readers, over
/// interleaved rounds so time-varying host noise cancels out. Returns
/// `(ratio, epoch_median, locked_median)`.
fn measure_scaling(table: &Arc<Pclht>, threads: u64) -> (f64, f64, f64) {
    let lock = Arc::new(RwLock::new(()));
    let rounds = 7;
    let mut epoch = Vec::with_capacity(rounds);
    let mut locked = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        locked.push(read_throughput(table, threads, Some(&lock)));
        epoch.push(read_throughput(table, threads, None));
    }
    epoch.sort_by(|a, b| a.partial_cmp(b).unwrap());
    locked.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ratio = epoch[rounds / 2] / locked[rounds / 2];
    println!(
        "epoch vs read-lock at {threads} readers: {ratio:.2}x \
         (medians over {rounds} interleaved rounds: epoch {:.0} ops/s, read-lock {:.0} ops/s)",
        epoch[rounds / 2],
        locked[rounds / 2]
    );
    (ratio, epoch[rounds / 2], locked[rounds / 2])
}

fn bench_read_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pclht_read_scaling");
    group.sample_size(10);

    let table = prefilled();

    // Single-threaded ns/op of both read paths, for the record.
    group.bench_function("get_epoch_pin_1t", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % KEYS;
            std::hint::black_box(table.get_first(i))
        });
    });
    group.bench_function("get_read_lock_1t", |b| {
        let lock = RwLock::new(());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % KEYS;
            let guard = lock.read();
            let v = std::hint::black_box(table.get_first(i));
            drop(guard);
            v
        });
    });
    group.finish();

    // Reader-scaling sweep (informational).
    for threads in [1u64, 2, 4, 8] {
        let tput = read_throughput(&table, threads, None);
        println!("epoch read path, {threads} readers: {tput:.0} ops/s aggregate");
    }

    // The acceptance gate: at 4+ readers, the lock-free path must at least
    // match the read-lock baseline. A failing measurement is re-taken a
    // couple of times (shared CI runners are noisy); with
    // `READ_BENCH_SOFT=1` (the merge-gating CI job) a persistent miss only
    // warns, while the nightly perf job keeps the hard assertion.
    let (mut ratio, mut epoch_med, mut locked_med) = measure_scaling(&table, GATE_THREADS);
    for _ in 0..2 {
        if ratio >= 1.0 {
            break;
        }
        (ratio, epoch_med, locked_med) = measure_scaling(&table, GATE_THREADS);
    }
    // Machine-readable medians for the CI perf-trajectory artifact.
    write_bench_record(
        "read_scaling",
        &[
            ("readers", GATE_THREADS as f64),
            ("epoch_ops_per_sec", epoch_med),
            ("read_lock_ops_per_sec", locked_med),
            ("ratio", ratio),
            ("gate_ratio", 1.0),
        ],
    );
    let soft = std::env::var_os("READ_BENCH_SOFT").is_some_and(|v| v != "0");
    if ratio < 1.0 && soft {
        eprintln!(
            "warning: epoch read path did not match the read-lock baseline \
             at {GATE_THREADS} threads ({ratio:.2}x); not failing because \
             READ_BENCH_SOFT is set"
        );
    } else {
        assert!(
            ratio >= 1.0,
            "lock-free reads must scale at least as well as the read-lock \
             baseline at {GATE_THREADS} threads, got {ratio:.2}x"
        );
    }
}

criterion_group!(benches, bench_read_scaling);
criterion_main!(benches);
