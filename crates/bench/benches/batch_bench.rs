//! Micro-benchmarks of the batched client API: `KvsClient::execute` with
//! owner-grouped batches versus an equivalent loop of per-key calls.
//!
//! The batched path pays routing (cached-table lock + owner pick), node
//! lookup, availability/ownership checks, shard locking and log-batch
//! flushing **once per owner group** instead of once per operation; these
//! benches measure how much that amortizes on reads, writes and mixed
//! traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_core::{Kvs, Op, Reply};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_workload::key_for;

const KEYS: u64 = 5_000;
const VALUE: usize = 128;
const BATCH: usize = 32;

fn cluster() -> Kvs {
    let kvs = Kvs::builder()
        .initial_kns(4)
        .threads_per_kn(2)
        .cache_bytes_per_kn(8 << 20)
        .write_batch_ops(8)
        .dpm(DpmConfig {
            pool: PmemConfig::with_capacity(512 << 20),
            segment_bytes: 2 << 20,
            merge_threads: 2,
            index: PclhtConfig::for_capacity(KEYS as usize * 2),
            ..DpmConfig::default()
        })
        .build()
        .unwrap();
    let client = kvs.client();
    for i in 0..KEYS {
        client.insert(&key_for(i, 8), &[1u8; VALUE]).unwrap();
    }
    kvs.quiesce().unwrap();
    // Warm the caches so reads measure the request path, not DPM misses.
    for i in 0..KEYS {
        client.lookup(&key_for(i, 8)).unwrap();
    }
    kvs
}

/// The next `n` keys of a strided scan (the stride spreads consecutive ops
/// across owners, the worst case for grouping).
fn next_keys(cursor: &mut u64, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|_| {
            *cursor = (*cursor + 31) % KEYS;
            key_for(*cursor, 8)
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_api");
    group.sample_size(15);

    let kvs = cluster();
    let client = kvs.client();

    group.bench_function(format!("read_per_key_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            // The per-key equivalent of one `execute` batch: issue 32
            // lookups and produce all 32 results.
            let results: Vec<Option<Vec<u8>>> = next_keys(&mut cursor, BATCH)
                .iter()
                .map(|key| client.lookup(key).unwrap())
                .collect();
            std::hint::black_box(results)
        });
    });

    group.bench_function(format!("read_execute_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            let ops = next_keys(&mut cursor, BATCH)
                .into_iter()
                .map(Op::lookup)
                .collect();
            std::hint::black_box(client.execute(ops))
        });
    });

    group.bench_function(format!("write_per_key_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            for key in next_keys(&mut cursor, BATCH) {
                client.update(&key, &[2u8; VALUE]).unwrap();
            }
        });
    });

    group.bench_function(format!("write_execute_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            let ops = next_keys(&mut cursor, BATCH)
                .into_iter()
                .map(|k| Op::update(k, vec![2u8; VALUE]))
                .collect();
            std::hint::black_box(client.execute(ops))
        });
    });

    group.bench_function(format!("mixed_execute_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            let ops = next_keys(&mut cursor, BATCH)
                .into_iter()
                .enumerate()
                .map(|(i, k)| {
                    if i % 2 == 0 {
                        Op::lookup(k)
                    } else {
                        Op::update(k, vec![3u8; VALUE])
                    }
                })
                .collect();
            std::hint::black_box(client.execute(ops))
        });
    });

    group.finish();

    // The acceptance gate for the batched API: a batch of 32 must beat the
    // equivalent per-key loop. Rounds are interleaved A/B and compared by
    // median so time-varying background noise (merge threads, the host)
    // cancels out; both sides produce all 32 results per batch.
    let rounds = 11;
    let mut per_key_ns = Vec::with_capacity(rounds);
    let mut batched_ns = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let (a, b) = measure_round(&client);
        per_key_ns.push(a);
        batched_ns.push(b);
    }
    per_key_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    batched_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let speedup = per_key_ns[rounds / 2] / batched_ns[rounds / 2];
    println!(
        "\nbatched read speedup at batch={BATCH}: {speedup:.2}x \
         (medians over {rounds} interleaved rounds: per-key {:.0} ns/op, batched {:.0} ns/op)",
        per_key_ns[rounds / 2],
        batched_ns[rounds / 2]
    );
    assert!(
        speedup > 1.0,
        "execute(batch={BATCH}) must beat the per-key loop, got {speedup:.2}x"
    );
}

/// One interleaved round: (per-key ns/op, batched ns/op) over the same
/// strided key stream.
fn measure_round(client: &dinomo_core::KvsClient) -> (f64, f64) {
    use std::time::Instant;
    const OPS: u64 = 10_000;

    let mut cursor = 0u64;
    let per_key_start = Instant::now();
    let mut remaining = OPS;
    while remaining > 0 {
        let n = BATCH.min(remaining as usize);
        let results: Vec<Option<Vec<u8>>> = next_keys(&mut cursor, n)
            .iter()
            .map(|key| client.lookup(key).unwrap())
            .collect();
        std::hint::black_box(results);
        remaining -= n as u64;
    }
    let per_key = per_key_start.elapsed().as_nanos() as f64 / OPS as f64;

    let mut cursor = 0u64;
    let batched_start = Instant::now();
    let mut remaining = OPS;
    while remaining > 0 {
        let n = BATCH.min(remaining as usize);
        let ops: Vec<Op> = next_keys(&mut cursor, n)
            .into_iter()
            .map(Op::lookup)
            .collect();
        let replies = client.execute(ops);
        debug_assert!(replies.iter().all(Reply::is_ok));
        std::hint::black_box(replies);
        remaining -= n as u64;
    }
    let batched = batched_start.elapsed().as_nanos() as f64 / OPS as f64;

    (per_key, batched)
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
