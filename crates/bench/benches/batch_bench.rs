//! Micro-benchmarks of the batched client API: `KvsClient::execute` with
//! owner-grouped batches versus an equivalent loop of per-key calls.
//!
//! The batched path pays routing (cached-table lock + owner pick), node
//! lookup, availability/ownership checks, shard locking and log-batch
//! flushing **once per owner group** instead of once per operation; these
//! benches measure how much that amortizes on reads, writes and mixed
//! traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::harness::{batch_measurement_cluster, measure_batch_round, write_bench_record};
use dinomo_core::Op;
use dinomo_workload::key_for;

const KEYS: u64 = 5_000;
const VALUE: usize = 128;
const BATCH: usize = 32;

/// The next `n` keys of a strided scan (the stride spreads consecutive ops
/// across owners, the worst case for grouping).
fn next_keys(cursor: &mut u64, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|_| {
            *cursor = (*cursor + 31) % KEYS;
            key_for(*cursor, 8)
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_api");
    group.sample_size(15);

    let kvs = batch_measurement_cluster(KEYS);
    let client = kvs.client();

    group.bench_function(format!("read_per_key_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            // The per-key equivalent of one `execute` batch: issue 32
            // lookups and produce all 32 results.
            let results: Vec<Option<Vec<u8>>> = next_keys(&mut cursor, BATCH)
                .iter()
                .map(|key| client.lookup(key).unwrap())
                .collect();
            std::hint::black_box(results)
        });
    });

    group.bench_function(format!("read_execute_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            let ops = next_keys(&mut cursor, BATCH)
                .into_iter()
                .map(Op::lookup)
                .collect();
            std::hint::black_box(client.execute(ops))
        });
    });

    group.bench_function(format!("write_per_key_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            for key in next_keys(&mut cursor, BATCH) {
                client.update(&key, &[2u8; VALUE]).unwrap();
            }
        });
    });

    group.bench_function(format!("write_execute_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            let ops = next_keys(&mut cursor, BATCH)
                .into_iter()
                .map(|k| Op::update(k, vec![2u8; VALUE]))
                .collect();
            std::hint::black_box(client.execute(ops))
        });
    });

    group.bench_function(format!("mixed_execute_x{BATCH}"), |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            let ops = next_keys(&mut cursor, BATCH)
                .into_iter()
                .enumerate()
                .map(|(i, k)| {
                    if i % 2 == 0 {
                        Op::lookup(k)
                    } else {
                        Op::update(k, vec![3u8; VALUE])
                    }
                })
                .collect();
            std::hint::black_box(client.execute(ops))
        });
    });

    group.finish();

    // The acceptance gate for the batched API: a batch of 32 must beat the
    // equivalent per-key loop. A failing measurement is re-taken a couple of
    // times before it counts — a single below-1.0 median on a shared,
    // noisy runner should not fail a correct build — and with
    // `BATCH_BENCH_SOFT=1` (set by the merge-gating CI job; the nightly
    // perf job leaves it unset) a persistent miss only warns.
    let (mut speedup, mut per_key_med, mut batched_med) = measure_speedup(&client);
    for _ in 0..2 {
        if speedup > 1.0 {
            break;
        }
        (speedup, per_key_med, batched_med) = measure_speedup(&client);
    }
    // Machine-readable medians for the CI perf-trajectory artifact.
    write_bench_record(
        "batch_bench",
        &[
            ("batch", BATCH as f64),
            ("per_key_ns_per_op", per_key_med),
            ("batched_ns_per_op", batched_med),
            ("speedup", speedup),
            ("gate_speedup", 1.0),
        ],
    );
    let soft = std::env::var_os("BATCH_BENCH_SOFT").is_some_and(|v| v != "0");
    if speedup <= 1.0 && soft {
        eprintln!(
            "warning: execute(batch={BATCH}) did not beat the per-key loop \
             ({speedup:.2}x); not failing because BATCH_BENCH_SOFT is set"
        );
    } else {
        assert!(
            speedup > 1.0,
            "execute(batch={BATCH}) must beat the per-key loop, got {speedup:.2}x"
        );
    }
}

/// Median per-key / median batched ns-per-op over interleaved rounds.
/// Rounds are interleaved A/B and compared by median so time-varying
/// background noise (merge threads, the host) cancels out; both sides
/// produce all 32 results per batch. Returns `(speedup, per_key_median,
/// batched_median)`.
fn measure_speedup(client: &dinomo_core::KvsClient) -> (f64, f64, f64) {
    let rounds = 11;
    let mut per_key_ns = Vec::with_capacity(rounds);
    let mut batched_ns = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let (a, b) = measure_batch_round(client, KEYS, BATCH, 10_000);
        per_key_ns.push(a);
        batched_ns.push(b);
    }
    per_key_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    batched_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let speedup = per_key_ns[rounds / 2] / batched_ns[rounds / 2];
    println!(
        "\nbatched read speedup at batch={BATCH}: {speedup:.2}x \
         (medians over {rounds} interleaved rounds: per-key {:.0} ns/op, batched {:.0} ns/op)",
        per_key_ns[rounds / 2],
        batched_ns[rounds / 2]
    );
    (speedup, per_key_ns[rounds / 2], batched_ns[rounds / 2])
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
