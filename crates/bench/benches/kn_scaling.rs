//! Batch-throughput scaling of the sharded KN worker-thread executor
//! versus the inline (caller-thread) execution path it replaced.
//!
//! Before the executor, `KvsClient::execute` ran a node's whole owner
//! group on the calling thread, shard after shard — a node's
//! `threads_per_kn` shards never worked concurrently within one request.
//! The executor enqueues one sub-batch per involved shard onto that
//! shard's worker thread, so the same batch fans out across all shards at
//! once.
//!
//! The cluster under test makes per-op cost fabric-bound: no KN cache and
//! a **sleeping** delay mode, so every lookup's one-sided index/value
//! reads park the executing thread the way a synchronous RDMA verb parks
//! a real KN worker. Sleeping (rather than busy-spinning) lets concurrent
//! workers overlap their waits even on small CI hosts, which is the
//! executor's whole value proposition — and why the inline baseline,
//! which serializes every wait on one thread, cannot hide the difference.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::harness::{
    kn_scaling_cluster, measure_kn_batch_throughput, median, write_bench_record,
};

const KEYS: u64 = 2_000;
const BATCH: usize = 128;
const BATCHES_PER_ROUND: u64 = 6;
const GATE_WORKERS: usize = 4;
const GATE_SPEEDUP: f64 = 1.5;

/// Median executor / median inline throughput at `GATE_WORKERS` shard
/// workers, over interleaved rounds so time-varying host noise cancels
/// out. Returns `(speedup, executor_ops_per_sec, inline_ops_per_sec)`.
fn measure_scaling(
    executor: &dinomo_core::KvsClient,
    inline: &dinomo_core::KvsClient,
) -> (f64, f64, f64) {
    let rounds = 5;
    let mut exec = Vec::with_capacity(rounds);
    let mut base = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        base.push(measure_kn_batch_throughput(
            inline,
            KEYS,
            BATCH,
            BATCHES_PER_ROUND,
        ));
        exec.push(measure_kn_batch_throughput(
            executor,
            KEYS,
            BATCH,
            BATCHES_PER_ROUND,
        ));
    }
    let exec_med = median(&exec);
    let base_med = median(&base);
    let speedup = exec_med / base_med;
    println!(
        "executor vs inline at {GATE_WORKERS} workers, batch {BATCH}: {speedup:.2}x \
         (medians over {rounds} interleaved rounds: executor {exec_med:.0} ops/s, \
         inline {base_med:.0} ops/s)"
    );
    (speedup, exec_med, base_med)
}

fn bench_kn_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kn_scaling");
    group.sample_size(10);

    // Worker-count sweep (informational): aggregate batch throughput with
    // the executor on, 1 → 4 shard workers.
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, GATE_WORKERS] {
        let kvs = kn_scaling_cluster(workers, true, KEYS);
        let client = kvs.client();
        // Warm-up round, then one measured round for the sweep table.
        measure_kn_batch_throughput(&client, KEYS, BATCH, 2);
        let tput = measure_kn_batch_throughput(&client, KEYS, BATCH, BATCHES_PER_ROUND);
        println!("executor, {workers} shard workers: {tput:.0} ops/s aggregate");
        sweep.push((workers, tput));
    }

    // The gated comparison: executor vs inline at GATE_WORKERS shards,
    // both clusters alive for the whole interleaved measurement.
    let executor_kvs = kn_scaling_cluster(GATE_WORKERS, true, KEYS);
    let inline_kvs = kn_scaling_cluster(GATE_WORKERS, false, KEYS);
    let executor_client = executor_kvs.client();
    let inline_client = inline_kvs.client();

    group.bench_function(format!("execute_x{BATCH}_workers_{GATE_WORKERS}"), |b| {
        b.iter(|| measure_kn_batch_throughput(&executor_client, KEYS, BATCH, 1))
    });
    group.bench_function(format!("execute_x{BATCH}_inline"), |b| {
        b.iter(|| measure_kn_batch_throughput(&inline_client, KEYS, BATCH, 1))
    });
    group.finish();

    // The acceptance gate: fanning a batch across 4 shard workers must
    // beat the inline single-thread path by ≥1.5x. A failing measurement
    // is re-taken a couple of times (shared CI runners are noisy); with
    // `KN_BENCH_SOFT=1` (the merge-gating CI job) a persistent miss only
    // warns, while the nightly perf job keeps the hard assertion.
    let (mut speedup, mut exec_med, mut base_med) =
        measure_scaling(&executor_client, &inline_client);
    for _ in 0..2 {
        if speedup >= GATE_SPEEDUP {
            break;
        }
        (speedup, exec_med, base_med) = measure_scaling(&executor_client, &inline_client);
    }

    // Machine-readable medians for the CI perf-trajectory artifact.
    let mut metrics: Vec<(&str, f64)> = vec![
        ("batch", BATCH as f64),
        ("inline_ops_per_sec", base_med),
        ("executor_ops_per_sec", exec_med),
        ("speedup_at_4_workers", speedup),
        ("gate_speedup", GATE_SPEEDUP),
    ];
    let sweep_named: Vec<(String, f64)> = sweep
        .iter()
        .map(|(w, t)| (format!("executor_ops_per_sec_{w}_workers"), *t))
        .collect();
    metrics.extend(sweep_named.iter().map(|(n, t)| (n.as_str(), *t)));
    write_bench_record("kn_scaling", &metrics);

    let soft = std::env::var_os("KN_BENCH_SOFT").is_some_and(|v| v != "0");
    if speedup < GATE_SPEEDUP && soft {
        eprintln!(
            "warning: executor batch throughput did not reach {GATE_SPEEDUP}x the \
             inline baseline at {GATE_WORKERS} workers ({speedup:.2}x); not \
             failing because KN_BENCH_SOFT is set"
        );
    } else {
        assert!(
            speedup >= GATE_SPEEDUP,
            "fanning a batch across {GATE_WORKERS} shard workers must deliver at \
             least {GATE_SPEEDUP}x the inline single-thread throughput, got \
             {speedup:.2}x"
        );
    }
}

criterion_group!(benches, bench_kn_scaling);
criterion_main!(benches);
