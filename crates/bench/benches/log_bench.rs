//! Micro-benchmarks of the DPM log path: batched appends (the KN write
//! critical path) and end-to-end write+merge.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dinomo_dpm::{DpmConfig, DpmNode, LogWriter};
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_simnet::Nic;
use std::sync::Arc;

fn dpm() -> Arc<DpmNode> {
    Arc::new(
        DpmNode::new(DpmConfig {
            pool: PmemConfig::with_capacity(256 << 20),
            segment_bytes: 4 << 20,
            flush_batch_bytes: 64 << 10,
            merge_threads: 2,
            unmerged_segment_threshold: 4,
            index: PclhtConfig::for_capacity(200_000),
            inject_media_delay: false,
            gc: dinomo_dpm::GcConfig::default(),
        })
        .unwrap(),
    )
}

fn bench_log(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpm_log");
    group.sample_size(15);

    group.bench_function("append_and_flush_batch_of_64", |b| {
        let dpm = dpm();
        let mut writer = LogWriter::new(Arc::clone(&dpm), 0, Nic::default());
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            for i in 0..64u64 {
                let key = format!("key{:012}", round * 64 + i);
                writer.append_put(key.as_bytes(), &[0u8; 1024]);
            }
            std::hint::black_box(writer.flush().unwrap())
        });
    });

    group.bench_function("write_then_merge_1000_entries", |b| {
        b.iter_batched(
            dpm,
            |dpm| {
                let mut writer = LogWriter::new(Arc::clone(&dpm), 1, Nic::default());
                for i in 0..1_000u64 {
                    writer.append_put(format!("key{i:012}").as_bytes(), &[0u8; 256]);
                    if writer.should_flush() {
                        writer.flush().unwrap();
                    }
                }
                writer.flush().unwrap();
                dpm.wait_until_merged(1);
                dpm
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("remote_read_after_merge", |b| {
        let dpm = dpm();
        let nic = Nic::default();
        let mut writer = LogWriter::new(Arc::clone(&dpm), 2, nic.clone());
        for i in 0..10_000u64 {
            writer.append_put(format!("key{i:012}").as_bytes(), &[7u8; 512]);
            if writer.should_flush() {
                writer.flush().unwrap();
            }
        }
        writer.flush().unwrap();
        dpm.wait_until_merged(2);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 17) % 10_000;
            std::hint::black_box(dpm.remote_read(&nic, format!("key{i:012}").as_bytes()))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_log);
criterion_main!(benches);
