//! Observability overhead guard: the always-compiled metrics registry
//! and stage tracing must cost at most 3 % of closed-loop throughput.
//!
//! The guard measures the saturation workload (GC and replication live,
//! 8 client threads) twice in interleaved rounds — once with the
//! registry recording (`obs_on`, the default) and once with recording
//! globally disabled (`dinomo_obs::set_enabled(false)`, which turns
//! every timed section into a branch on one relaxed atomic and skips
//! the clock reads) — and gates the ratio of the medians. Interleaving
//! the rounds makes time-varying host noise hit both configurations
//! equally, the same trick the saturation sweep uses.
//!
//! With `OBS_BENCH_SOFT=1` (the merge-gating CI job) a persistent miss
//! only warns; the nightly perf job keeps the hard assertion.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::harness::{
    measure_saturation_throughput, median, saturation_cluster, write_bench_record,
};

const KEYS: u64 = 2_000;
const REPLICATED: u64 = 8;
const OPS_PER_THREAD: u64 = 400;
const THREADS: usize = 8;
const ROUNDS: usize = 5;
/// Maximum tolerated throughput loss with observability on.
const MAX_OVERHEAD: f64 = 0.03;

/// Interleaved medians: (obs on, obs off) ops/s.
fn measure_pair(kvs: &dinomo_core::Kvs) -> (f64, f64) {
    let mut on = Vec::with_capacity(ROUNDS);
    let mut off = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        dinomo_obs::set_enabled(true);
        on.push(measure_saturation_throughput(
            kvs,
            THREADS,
            KEYS,
            OPS_PER_THREAD,
        ));
        dinomo_obs::set_enabled(false);
        off.push(measure_saturation_throughput(
            kvs,
            THREADS,
            KEYS,
            OPS_PER_THREAD,
        ));
    }
    dinomo_obs::set_enabled(true);
    (median(&on), median(&off))
}

fn bench_obs_overhead(c: &mut Criterion) {
    let kvs = saturation_cluster(KEYS, REPLICATED);

    // Warm-up outside the measured rounds.
    measure_saturation_throughput(&kvs, THREADS, KEYS, OPS_PER_THREAD);

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("closed_loop_obs_on", |b| {
        b.iter(|| measure_saturation_throughput(&kvs, THREADS, KEYS, OPS_PER_THREAD / 4))
    });
    group.finish();

    // The gate, re-taken a couple of times on a miss (shared CI runners
    // are noisy; a single unlucky scheduling quantum at 8 threads swings
    // more than the 3 % being resolved).
    let (mut on, mut off) = measure_pair(&kvs);
    let overhead = |on: f64, off: f64| if off > 0.0 { 1.0 - on / off } else { 0.0 };
    for _ in 0..2 {
        if overhead(on, off) <= MAX_OVERHEAD {
            break;
        }
        (on, off) = measure_pair(&kvs);
    }
    let measured = overhead(on, off);
    println!(
        "obs overhead: {on:.0} ops/s recording vs {off:.0} ops/s disabled \
         ({:+.2}% throughput delta, gate {:.0}%)",
        -100.0 * measured,
        100.0 * MAX_OVERHEAD
    );

    write_bench_record(
        "obs_overhead",
        &[
            ("ops_per_sec_obs_on", on),
            ("ops_per_sec_obs_off", off),
            ("overhead_fraction", measured),
            ("gate_max_overhead", MAX_OVERHEAD),
        ],
    );

    let soft = std::env::var_os("OBS_BENCH_SOFT").is_some_and(|v| v != "0");
    if measured > MAX_OVERHEAD && soft {
        eprintln!(
            "warning: observability overhead {:.2}% exceeds the {:.0}% gate; \
             not failing because OBS_BENCH_SOFT is set",
            100.0 * measured,
            100.0 * MAX_OVERHEAD
        );
    } else {
        assert!(
            measured <= MAX_OVERHEAD,
            "metrics registry + stage tracing cost {:.2}% of closed-loop \
             throughput (gate {:.0}%): {on:.0} ops/s on vs {off:.0} ops/s off",
            100.0 * measured,
            100.0 * MAX_OVERHEAD
        );
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
