//! Recovery-time figure: crash-to-SLO-met versus live data size.
//!
//! For each scale the store is loaded and overwritten (ack-durable
//! writes, persistence-tracked pool), then a whole-DPM power failure is
//! simulated and `Kvs::crash_dpm_and_recover` runs the full sequence —
//! drop volatile state, `simulate_crash`, `recover()`, rebuild the
//! ordered index, quiescent invariant walk, reopen. The clock stops when
//! a sample of keys reads back its expected value ("SLO met"), and the
//! median over several crashes per scale lands in
//! `target/bench-results/recovery_bench.json` for the perf-trajectory
//! artifact.
//!
//! Like the other acceptance benches, the assertion is soft on the
//! merge-gating CI job (`RECOVERY_BENCH_SOFT=1`) and hard on the nightly
//! perf job.

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_bench::harness::{median, write_bench_record};
use dinomo_core::{Kvs, Op, Reply};
use dinomo_dpm::DpmConfig;
use dinomo_pclht::PclhtConfig;
use dinomo_pmem::PmemConfig;
use dinomo_workload::key_for;
use std::time::Instant;

/// Key counts per scale (values are `VALUE_LEN` bytes each).
const SCALES: [u64; 3] = [1_000, 4_000, 16_000];
const VALUE_LEN: usize = 256;
/// Overwrite rounds after the load, so recovery replays superseded
/// entries too (staleness arbitration is part of the scan).
const OVERWRITE_ROUNDS: u8 = 3;
/// Crashes per scale; the recorded figure is the median.
const CRASHES_PER_SCALE: usize = 5;
const BATCH: usize = 64;
/// Median crash-to-SLO-met bound for the largest scale, in milliseconds.
/// Deliberately generous: the gate catches pathological regressions
/// (quadratic re-merge, lost idempotence forcing retries), not noise.
const SLO_BOUND_MS: f64 = 10_000.0;

fn recovery_cluster() -> Kvs {
    let mut pool = PmemConfig::with_capacity(96 << 20);
    // `simulate_crash` is a no-op unless the pool tracks persistence.
    pool.track_persistence = true;
    Kvs::builder()
        .small_for_tests()
        .initial_kns(2)
        .threads_per_kn(2)
        // Ack ⇒ flushed: the data whose recovery is timed is exactly the
        // acknowledged writes.
        .write_batch_ops(1)
        .dpm(DpmConfig {
            pool,
            segment_bytes: 64 << 10,
            index: PclhtConfig::for_capacity(32_768),
            ..DpmConfig::small_for_tests()
        })
        .build()
        .unwrap()
}

/// Load `keys` keys and overwrite them `OVERWRITE_ROUNDS` times; the
/// expected value of key `i` afterwards is `[OVERWRITE_ROUNDS; VALUE_LEN]`.
fn load(kvs: &Kvs, keys: u64) {
    let client = kvs.client();
    for round in 0..=OVERWRITE_ROUNDS {
        for chunk_start in (0..keys).step_by(BATCH) {
            let ops: Vec<Op> = (chunk_start..(chunk_start + BATCH as u64).min(keys))
                .map(|i| Op::insert(key_for(i, 8), [round; VALUE_LEN]))
                .collect();
            let replies = client.execute(ops);
            assert!(replies.iter().all(Reply::is_ok), "load op failed");
        }
    }
    kvs.quiesce().unwrap();
}

/// One timed crash: power-fail the DPM, recover, and probe a key sample
/// until every probe serves its expected value. Returns (elapsed ms,
/// entries recovered).
fn timed_crash(kvs: &Kvs, keys: u64) -> (f64, u64) {
    let client = kvs.client();
    let start = Instant::now();
    let report = kvs
        .crash_dpm_and_recover()
        .expect("recovery must pass its invariant walk");
    for i in (0..keys).step_by(97) {
        assert_eq!(
            client.lookup(&key_for(i, 8)).unwrap(),
            Some(vec![OVERWRITE_ROUNDS; VALUE_LEN]),
            "key {i} lost across the crash"
        );
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(report.recovery.entries_recovered > 0, "{report:?}");
    assert_eq!(report.recovery.torn_entries, 0, "{report:?}");
    (elapsed_ms, report.recovery.entries_recovered)
}

fn bench_recovery(c: &mut Criterion) {
    let mut record: Vec<(String, f64)> = Vec::new();
    let mut largest_median = 0.0f64;
    for keys in SCALES {
        let kvs = recovery_cluster();
        load(&kvs, keys);
        let live_mb = kvs.stats().dpm.live_bytes as f64 / (1 << 20) as f64;
        let mut samples = Vec::with_capacity(CRASHES_PER_SCALE);
        let mut entries = 0u64;
        for _ in 0..CRASHES_PER_SCALE {
            let (ms, n) = timed_crash(&kvs, keys);
            samples.push(ms);
            entries = n;
        }
        let med = median(&samples);
        largest_median = med; // SCALES ascends; the last value wins.
        println!(
            "recovery_bench: {keys} keys ({live_mb:.2} MiB live, {entries} \
             entries replayed) — median crash-to-SLO {med:.2} ms \
             (samples {samples:?})"
        );
        record.push((format!("recovery_ms_{keys}"), med));
        record.push((format!("live_mb_{keys}"), live_mb));
        record.push((format!("entries_recovered_{keys}"), entries as f64));
    }
    record.push(("gate_slo_bound_ms".to_string(), SLO_BOUND_MS));
    let pairs: Vec<(&str, f64)> = record.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    write_bench_record("recovery_bench", &pairs);

    let soft = std::env::var_os("RECOVERY_BENCH_SOFT").is_some_and(|v| v != "0");
    let message = format!(
        "median crash-to-SLO-met at the largest scale must stay under \
         {SLO_BOUND_MS} ms (got {largest_median:.2} ms)"
    );
    if largest_median > SLO_BOUND_MS && soft {
        eprintln!("warning: {message}; not failing because RECOVERY_BENCH_SOFT is set");
    } else {
        assert!(largest_median <= SLO_BOUND_MS, "{message}");
    }

    // Steady-state crash/recover cycle at the smallest scale, for the
    // perf trajectory.
    let kvs = recovery_cluster();
    load(&kvs, SCALES[0]);
    let mut group = c.benchmark_group("recovery_bench");
    group.sample_size(10);
    group.bench_function("crash_recover_1k", |b| {
        b.iter(|| std::hint::black_box(kvs.crash_dpm_and_recover().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
