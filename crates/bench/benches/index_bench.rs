//! Micro-benchmarks of the P-CLHT metadata index: local inserts/lookups,
//! in-place updates, and the one-sided remote lookup path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dinomo_pclht::{Pclht, PclhtConfig};
use dinomo_pmem::{PmemConfig, PmemPool};
use dinomo_simnet::Nic;
use std::sync::Arc;

fn prefilled(n: u64) -> Pclht {
    let pool = Arc::new(PmemPool::new(PmemConfig::with_capacity(64 << 20)));
    let table = Pclht::new(pool, PclhtConfig::for_capacity(n as usize * 2)).unwrap();
    for i in 0..n {
        table.insert(i, i + 1).unwrap();
    }
    table
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("pclht");
    group.sample_size(20);

    group.bench_function("local_get_hit", |b| {
        let table = prefilled(100_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 100_000;
            std::hint::black_box(table.get_first(i))
        });
    });

    group.bench_function("local_insert", |b| {
        b.iter_batched(
            || prefilled(1_000),
            |table| {
                for i in 1_000u64..2_000 {
                    table.insert(i, i).unwrap();
                }
                table
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("in_place_update", |b| {
        let table = prefilled(10_000);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % 10_000;
            std::hint::black_box(table.update(i, |_| true, i + 2))
        });
    });

    group.bench_function("remote_get_one_sided", |b| {
        let table = prefilled(100_000);
        let nic = Nic::default();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 11) % 100_000;
            std::hint::black_box(table.remote_get(&nic, i, |_| true))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
