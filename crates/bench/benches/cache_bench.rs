//! Micro-benchmarks of the KN cache policies (ablation for the DAC design
//! choice: adaptive vs static splits vs shortcut-only).

use criterion::{criterion_group, criterion_main, Criterion};
use dinomo_cache::{build_cache, CacheKind, KnCache, ValueLoc};

fn exercise(cache: &mut dyn KnCache, keys: u32, value_len: usize) {
    for i in 0..keys {
        let key = format!("key{i:06}").into_bytes();
        match cache.lookup(&key) {
            dinomo_cache::CacheLookup::Value(_) => {}
            dinomo_cache::CacheLookup::Shortcut(loc) => {
                cache.admit_value(&key, &vec![0u8; value_len], loc);
            }
            dinomo_cache::CacheLookup::Miss => {
                cache.record_miss_cost(3);
                cache.admit_value(
                    &key,
                    &vec![0u8; value_len],
                    ValueLoc::new(u64::from(i) * 1024, value_len as u32),
                );
            }
        }
    }
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("kn_cache");
    group.sample_size(20);
    for (name, kind) in [
        ("dac", CacheKind::Dac),
        ("shortcut_only", CacheKind::ShortcutOnly),
        ("value_only", CacheKind::ValueOnly),
        ("static_40", CacheKind::StaticFraction(40)),
    ] {
        group.bench_function(format!("churn_{name}"), |b| {
            let mut cache = build_cache(kind, 256 << 10);
            // Warm up so steady-state eviction/promotion behaviour is measured.
            exercise(cache.as_mut(), 4_000, 128);
            b.iter(|| exercise(cache.as_mut(), 2_000, 128));
        });
    }

    group.bench_function("dac_hit_path", |b| {
        let mut cache = build_cache(CacheKind::Dac, 8 << 20);
        for i in 0..1_000u32 {
            let key = format!("key{i:06}").into_bytes();
            cache.on_local_write(&key, &[0u8; 128], ValueLoc::new(u64::from(i), 128));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1_000;
            let key = format!("key{i:06}").into_bytes();
            std::hint::black_box(cache.lookup(&key))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
