//! # dinomo — umbrella crate for the DINOMO reproduction
//!
//! This crate re-exports the public API of every crate in the workspace so
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`core`] — the Dinomo key-value store (and its Dinomo-S /
//!   Dinomo-N variants),
//! * [`clover`] — the Clover baseline,
//! * [`cluster`] — routing/monitoring control plane and the
//!   timeline experiment driver,
//! * [`cache`], [`partition`], [`dpm`], [`pclht`], [`pmem`],
//!   [`simnet`] — the substrates,
//! * [`workload`] — YCSB-style workload generation,
//! * [`check`] — history recording + per-key linearizability checking
//!   and the seeded generative stress driver (see `docs/TESTING.md`).
//!
//! ## Quickstart
//!
//! Build a cluster with the fluent builder, then submit batches of [`Op`]s
//! through [`KvsClient::execute`] — the client groups each batch by owner
//! KVS node and issues one request per node, amortizing routing and
//! shard-locking overhead. The classic per-key methods are thin wrappers
//! over the same path:
//!
//! ```
//! use dinomo::{Kvs, Op, Reply, Variant};
//!
//! let kvs = Kvs::builder()
//!     .small_for_tests()
//!     .initial_kns(2)
//!     .variant(Variant::Dinomo)
//!     .build()
//!     .unwrap();
//!
//! let client = kvs.client();
//! let replies = client.execute(vec![
//!     Op::insert("paper", "dinomo"),
//!     Op::lookup("paper"),
//! ]);
//! assert_eq!(replies[1].value(), Some(&b"dinomo"[..]));
//!
//! client.multi_put([("a", "1"), ("b", "2")]);
//! assert_eq!(client.lookup(b"a").unwrap(), Some(b"1".to_vec()));
//! ```

#![warn(missing_docs)]

pub use dinomo_cache as cache;
pub use dinomo_check as check;
pub use dinomo_clover as clover;
pub use dinomo_cluster as cluster;
pub use dinomo_core as core;
pub use dinomo_dpm as dpm;
pub use dinomo_partition as partition;
pub use dinomo_pclht as pclht;
pub use dinomo_pmem as pmem;
pub use dinomo_simnet as simnet;
pub use dinomo_workload as workload;

pub use dinomo_clover::{CloverConfig, CloverKvs};
pub use dinomo_cluster::{
    ContentionLimits, DriverConfig, ElasticKvs, EventKind, PolicyEngine, ScriptedEvent,
    SimulationDriver, SloConfig,
};
pub use dinomo_core::{
    Kvs, KvsBuilder, KvsClient, KvsConfig, KvsError, KvsStats, Op, Reply, Variant,
};
pub use dinomo_workload::{KeyDistribution, WorkloadConfig, WorkloadGenerator, WorkloadMix};
