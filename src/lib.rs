//! # dinomo — umbrella crate for the DINOMO reproduction
//!
//! This crate re-exports the public API of every crate in the workspace so
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`core`](dinomo_core) — the Dinomo key-value store (and its Dinomo-S /
//!   Dinomo-N variants),
//! * [`clover`](dinomo_clover) — the Clover baseline,
//! * [`cluster`](dinomo_cluster) — routing/monitoring control plane and the
//!   timeline experiment driver,
//! * [`cache`](dinomo_cache), [`partition`](dinomo_partition),
//!   [`dpm`](dinomo_dpm), [`pclht`](dinomo_pclht), [`pmem`](dinomo_pmem),
//!   [`simnet`](dinomo_simnet) — the substrates,
//! * [`workload`](dinomo_workload) — YCSB-style workload generation.
//!
//! ```
//! use dinomo::{Kvs, KvsConfig};
//!
//! let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
//! let client = kvs.client();
//! client.insert(b"paper", b"dinomo").unwrap();
//! assert_eq!(client.lookup(b"paper").unwrap(), Some(b"dinomo".to_vec()));
//! ```

#![warn(missing_docs)]

pub use dinomo_cache as cache;
pub use dinomo_clover as clover;
pub use dinomo_cluster as cluster;
pub use dinomo_core as core;
pub use dinomo_dpm as dpm;
pub use dinomo_partition as partition;
pub use dinomo_pclht as pclht;
pub use dinomo_pmem as pmem;
pub use dinomo_simnet as simnet;
pub use dinomo_workload as workload;

pub use dinomo_clover::{CloverConfig, CloverKvs};
pub use dinomo_cluster::{
    DriverConfig, ElasticKvs, EventKind, PolicyEngine, ScriptedEvent, SimulationDriver, SloConfig,
};
pub use dinomo_core::{Kvs, KvsClient, KvsConfig, KvsError, KvsStats, Variant};
pub use dinomo_workload::{KeyDistribution, WorkloadConfig, WorkloadGenerator, WorkloadMix};
