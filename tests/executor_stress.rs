//! Stress coverage for the sharded worker-thread executor: membership churn
//! under multi-client batched load, and bounded-queue backpressure.
//!
//! The invariants under test:
//!
//! * **No lost acknowledged writes.** With `write_batch_ops = 1` every
//!   acknowledged write was flushed to the (shared, durable) DPM log before
//!   its reply, so it must be readable after any sequence of
//!   `add_node`/`remove_node`/`fail_node` — a sub-batch racing a
//!   reconfiguration either completes before the drain or rejects and is
//!   retried against the new owners.
//! * **Queues drain.** After every membership change (and after the run),
//!   no sub-batch is stranded in a worker queue and no worker is deadlocked
//!   — `execute` returns for every client and `queued_sub_batches` is zero.
//! * **Backpressure completes.** With absurdly shallow queues, `Busy` is
//!   actually exercised (visible in the node stats) and yet every batch
//!   still completes with correct replies through the client's retry loop.

use dinomo::cluster::{
    ContentionLimits, DriverConfig, ElasticKvs, EventKind, ScriptedEvent, SimulationDriver,
};
use dinomo::workload::{KeyDistribution, WorkloadConfig, WorkloadMix};
use dinomo::{Kvs, KvsConfig, Op, Reply, Variant};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Many client threads drive batched traffic through the
/// `SimulationDriver` while scripted membership events (add, fail, remove)
/// fire between epochs. The run must make progress in every epoch and
/// leave every surviving node's worker queues empty.
#[test]
fn driver_churn_keeps_queues_draining() {
    let kvs = Arc::new(
        Kvs::new(KvsConfig {
            initial_kns: 3,
            ..KvsConfig::small_for_tests()
        })
        .unwrap(),
    );
    let driver = SimulationDriver::new(
        Arc::clone(&kvs) as Arc<dyn ElasticKvs>,
        DriverConfig {
            epoch_ms: 40,
            total_epochs: 8,
            max_clients: 4,
            initial_clients: 4,
            workload: WorkloadConfig {
                num_keys: 400,
                value_len: 64,
                mix: WorkloadMix::WRITE_HEAVY_UPDATE,
                distribution: KeyDistribution::MODERATE_SKEW,
                seed: 7,
                key_len: 8,
                max_scan_len: 16,
            },
            preload: true,
            key_sample_every: 8,
            batch_size: 16,
            // Contention ceilings on the churn scenario: generous enough
            // for healthy runs (these counters sit orders of magnitude
            // lower today), tight enough that a global-lock regression on
            // the cell-swing or reclamation paths fails the test instead
            // of scrolling past as a column.
            contention: ContentionLimits {
                max_cell_registry_waits_per_epoch: Some(100_000),
                max_epoch_bag_flushes_per_epoch: Some(100_000),
            },
            ..DriverConfig::default()
        },
    );
    let events = vec![
        ScriptedEvent {
            at_epoch: 1,
            event: EventKind::AddNode,
        },
        ScriptedEvent {
            at_epoch: 2,
            event: EventKind::FailRandomNode,
        },
        ScriptedEvent {
            at_epoch: 4,
            event: EventKind::RemoveRandomNode,
        },
        ScriptedEvent {
            at_epoch: 5,
            event: EventKind::AddNode,
        },
        ScriptedEvent {
            at_epoch: 6,
            event: EventKind::FailRandomNode,
        },
    ];
    let rows = driver.run(&events);
    assert_eq!(rows.len(), 8);
    // Clients made progress in every epoch, membership changes included
    // (a deadlocked worker pool would starve the closed-loop clients).
    for row in &rows {
        assert!(
            row.ops > 0,
            "no progress in epoch {} (actions: {:?})",
            row.epoch,
            row.actions
        );
    }
    // Membership actually churned.
    assert!(rows.iter().any(|r| !r.actions.is_empty()));
    // Every surviving node's worker queues drained once the run stopped.
    for id in kvs.kn_ids() {
        assert_eq!(
            kvs.kn(id).unwrap().queued_sub_batches(),
            0,
            "node {id} still has queued sub-batches"
        );
    }
    // And the cluster still quiesces (no wedged merge or flush state).
    kvs.quiesce().unwrap();
}

/// Writers on several threads record every acknowledged insert while the
/// main thread scales out, scales in and injects a failure. Every write
/// acknowledged `Ok` must be readable afterwards (each op targets a unique
/// key, so there are no overwrite races to reason about).
#[test]
fn churn_loses_no_acknowledged_writes() {
    const WRITERS: usize = 4;
    const BATCHES_PER_WRITER: u64 = 60;
    const BATCH: u64 = 16;

    let kvs = Kvs::new(KvsConfig {
        initial_kns: 3,
        // Ack ⇒ flushed: with a write-batch of one, every sub-batch
        // flushes its buffered log writes before the reply slot is read.
        write_batch_ops: 1,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();

    let stop_churn = Arc::new(AtomicBool::new(false));
    let churn = {
        let kvs = kvs.clone();
        let stop = Arc::clone(&stop_churn);
        std::thread::spawn(move || {
            let mut added = Vec::new();
            while !stop.load(Ordering::Acquire) {
                if let Ok(id) = kvs.add_kn() {
                    added.push(id);
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
                // Planned scale-in of the oldest node.
                if kvs.num_kns() > 2 {
                    let victim = kvs.kn_ids()[0];
                    let _ = kvs.remove_kn(victim);
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
                // Fail-stop of the newest node.
                if kvs.num_kns() > 2 {
                    if let Some(&victim) = kvs.kn_ids().last() {
                        let _ = kvs.fail_kn(victim);
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let kvs = kvs.clone();
            std::thread::spawn(move || {
                let client = kvs.client();
                let mut acked: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                for batch_idx in 0..BATCHES_PER_WRITER {
                    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..BATCH)
                        .map(|i| {
                            let n = batch_idx * BATCH + i;
                            (
                                format!("w{w}-key-{n:06}").into_bytes(),
                                format!("w{w}-val-{n:06}").into_bytes(),
                            )
                        })
                        .collect();
                    let ops: Vec<Op> = items
                        .iter()
                        .map(|(k, v)| Op::insert(k.clone(), v.clone()))
                        .collect();
                    let replies = client.execute(ops);
                    for ((k, v), reply) in items.into_iter().zip(&replies) {
                        if reply.is_ok() {
                            acked.push((k, v));
                        }
                    }
                }
                acked
            })
        })
        .collect();

    let mut acked: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for w in writers {
        acked.extend(w.join().unwrap());
    }
    stop_churn.store(true, Ordering::Release);
    churn.join().unwrap();

    assert!(
        acked.len() as u64 > WRITERS as u64 * BATCHES_PER_WRITER * BATCH / 2,
        "churn rejected most writes ({} acked) — retry path is broken",
        acked.len()
    );
    kvs.quiesce().unwrap();
    let client = kvs.client();
    for (k, v) in &acked {
        assert_eq!(
            client.lookup(k).unwrap().as_deref(),
            Some(v.as_slice()),
            "acknowledged write {} was lost",
            String::from_utf8_lossy(k)
        );
    }
    for id in kvs.kn_ids() {
        assert_eq!(kvs.kn(id).unwrap().queued_sub_batches(), 0);
    }
}

/// With depth-1 worker queues and several clients hammering one node,
/// enqueues must collide: `Busy` backpressure reaches the client retry
/// path (visible as `busy_rejections` in the node stats) and still every
/// op completes with a correct reply.
#[test]
fn tiny_queues_surface_busy_and_still_complete() {
    const CLIENTS: usize = 4;
    const ROUNDS: u64 = 120;
    const BATCH: u64 = 32;

    let kvs = Kvs::builder()
        .small_for_tests()
        .initial_kns(1)
        .threads_per_kn(2)
        .executor_queue_depth(1)
        .build()
        .unwrap();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let kvs = kvs.clone();
            std::thread::spawn(move || {
                let client = kvs.client();
                for round in 0..ROUNDS {
                    let ops: Vec<Op> = (0..BATCH)
                        .map(|i| {
                            let key = format!("c{c}-{:04}", (round * BATCH + i) % 512);
                            if round % 3 == 0 {
                                Op::insert(key, format!("v{round}"))
                            } else {
                                Op::lookup(key)
                            }
                        })
                        .collect();
                    let replies = client.execute(ops);
                    assert!(
                        replies.iter().all(Reply::is_ok),
                        "client {c} round {round}: {replies:?}"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let stats = kvs.stats();
    let busy: u64 = stats.kns.iter().map(|k| k.busy_rejections).sum();
    let sub_batches: u64 = stats.kns.iter().map(|k| k.sub_batches).sum();
    assert!(sub_batches > 0, "executor never ran a sub-batch");
    assert!(
        busy > 0,
        "depth-1 queues under {CLIENTS} concurrent clients never reported Busy \
         ({sub_batches} sub-batches ran)"
    );
    // Everything the clients were acked for is really there.
    let client = kvs.client();
    kvs.quiesce().unwrap();
    for c in 0..CLIENTS {
        let v = client.lookup(format!("c{c}-0000").as_bytes()).unwrap();
        assert!(v.is_some(), "client {c}'s writes vanished");
    }
    for id in kvs.kn_ids() {
        assert_eq!(kvs.kn(id).unwrap().queued_sub_batches(), 0);
    }
    let _ = kvs.dpm();

    // All variants behave the same through the executor.
    for variant in [Variant::DinomoS, Variant::DinomoN] {
        let kvs = Kvs::builder()
            .small_for_tests()
            .executor_queue_depth(1)
            .variant(variant)
            .build()
            .unwrap();
        let client = kvs.client();
        let replies = client.execute(
            (0..64u64)
                .map(|i| Op::insert(format!("k{i}"), format!("v{i}")))
                .collect(),
        );
        assert!(replies.iter().all(Reply::is_ok), "{}", variant.name());
    }
}
