//! Reconfiguration under load: membership changes, failures and selective
//! replication must never lose committed data or wedge the cluster, and
//! Dinomo must achieve them without physically copying data.

use dinomo::workload::key_for;
use dinomo::{Kvs, KvsConfig, KvsError, Variant};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn loaded_cluster(variant: Variant, kns: usize, keys: u64) -> Kvs {
    let kvs = Kvs::new(
        KvsConfig { initial_kns: kns, ..KvsConfig::small_for_tests() }.with_variant(variant),
    )
    .unwrap();
    let client = kvs.client();
    for i in 0..keys {
        client.insert(&key_for(i, 8), &vec![(i % 251) as u8; 64]).unwrap();
    }
    kvs.flush_all().unwrap();
    kvs
}

#[test]
fn scale_out_and_back_in_under_concurrent_traffic() {
    let kvs = loaded_cluster(Variant::Dinomo, 2, 600);
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let kvs = kvs.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let client = kvs.client();
            let mut errors = 0u64;
            let mut ops = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                i += 1;
                let key = key_for(i % 600, 8);
                let result = if i % 5 == 0 {
                    client.update(&key, &[9u8; 64]).map(|()| ())
                } else {
                    client.lookup(&key).map(|_| ())
                };
                ops += 1;
                if result.is_err() {
                    errors += 1;
                }
            }
            (ops, errors)
        })
    };

    // Grow to 4 KNs, then shrink back to 2, while traffic keeps flowing.
    let a = kvs.add_kn().unwrap();
    let b = kvs.add_kn().unwrap();
    assert_eq!(kvs.num_kns(), 4);
    kvs.remove_kn(a).unwrap();
    kvs.remove_kn(b).unwrap();
    assert_eq!(kvs.num_kns(), 2);
    stop.store(true, Ordering::Release);
    let (ops, errors) = traffic.join().unwrap();
    assert!(ops > 0);
    assert_eq!(errors, 0, "client operations failed during reconfiguration");

    // Nothing was lost and Dinomo never copied data.
    let client = kvs.client();
    for i in 0..600u64 {
        assert!(client.lookup(&key_for(i, 8)).unwrap().is_some(), "key {i} lost");
    }
    assert_eq!(kvs.bytes_reshuffled(), 0);
}

#[test]
fn dinomo_n_pays_for_reconfiguration_with_data_copies() {
    let dinomo = loaded_cluster(Variant::Dinomo, 2, 400);
    let dinomo_n = loaded_cluster(Variant::DinomoN, 2, 400);
    dinomo.add_kn().unwrap();
    dinomo_n.add_kn().unwrap();
    assert_eq!(dinomo.bytes_reshuffled(), 0, "Dinomo moves only ownership");
    assert!(
        dinomo_n.bytes_reshuffled() > 0,
        "the shared-nothing variant must physically reshuffle data"
    );
    // Both still serve every key.
    for kvs in [&dinomo, &dinomo_n] {
        let client = kvs.client();
        for i in 0..400u64 {
            assert!(client.lookup(&key_for(i, 8)).unwrap().is_some());
        }
    }
}

#[test]
fn repeated_failures_leave_a_consistent_single_node() {
    let kvs = loaded_cluster(Variant::Dinomo, 4, 500);
    // Fail three of the four nodes, one at a time.
    while kvs.num_kns() > 1 {
        let victim = kvs.kn_ids()[0];
        kvs.fail_kn(victim).unwrap();
        let client = kvs.client();
        for i in (0..500u64).step_by(7) {
            assert!(
                client.lookup(&key_for(i, 8)).unwrap().is_some(),
                "key {i} lost after failing KN {victim}"
            );
        }
    }
    assert_eq!(kvs.num_kns(), 1);
    // A failed node cannot be failed twice.
    let gone = 0u32;
    assert!(matches!(kvs.fail_kn(gone), Err(KvsError::NoNodes) | Ok(())) || kvs.num_kns() == 1);
}

#[test]
fn replication_cycle_survives_membership_changes() {
    let kvs = loaded_cluster(Variant::Dinomo, 3, 200);
    let hot = key_for(7, 8);
    let owners = kvs.replicate_key(&hot, 3).unwrap();
    assert_eq!(owners.len(), 3);
    // Fail one of the replicas; the key must stay readable and writable.
    kvs.fail_kn(owners[1]).unwrap();
    let client = kvs.client();
    client.update(&hot, b"after-failure").unwrap();
    assert_eq!(client.lookup(&hot).unwrap(), Some(b"after-failure".to_vec()));
    // De-replicate and keep going.
    kvs.dereplicate_key(&hot).unwrap();
    client.update(&hot, b"final").unwrap();
    assert_eq!(client.lookup(&hot).unwrap(), Some(b"final".to_vec()));
    assert_eq!(kvs.ownership().read().replication_factor(&hot), 1);
}

#[test]
fn ownership_checks_reject_requests_to_non_owners() {
    let kvs = loaded_cluster(Variant::Dinomo, 2, 50);
    let key = key_for(1, 8);
    let owner = kvs.ownership().read().primary_owner(&key).unwrap();
    let other = kvs.kn_ids().into_iter().find(|&id| id != owner).unwrap();
    let wrong = kvs.kn(other).unwrap();
    match wrong.get(&key) {
        Err(KvsError::NotOwner { .. }) => {}
        other => panic!("expected NotOwner, got {other:?}"),
    }
    // The owner serves it fine.
    assert!(kvs.kn(owner).unwrap().get(&key).unwrap().is_some());
}
