//! Reconfiguration under load: membership changes, failures and selective
//! replication must never lose committed data or wedge the cluster, and
//! Dinomo must achieve them without physically copying data.

use dinomo::workload::key_for;
use dinomo::{Kvs, KvsConfig, KvsError, Op, Reply, Variant};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn loaded_cluster(variant: Variant, kns: usize, keys: u64) -> Kvs {
    let kvs = Kvs::new(
        KvsConfig {
            initial_kns: kns,
            ..KvsConfig::small_for_tests()
        }
        .with_variant(variant),
    )
    .unwrap();
    let client = kvs.client();
    for i in 0..keys {
        client
            .insert(&key_for(i, 8), &[(i % 251) as u8; 64])
            .unwrap();
    }
    kvs.flush_all().unwrap();
    kvs
}

#[test]
fn scale_out_and_back_in_under_concurrent_traffic() {
    let kvs = loaded_cluster(Variant::Dinomo, 2, 600);
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let traffic = {
        let kvs = kvs.clone();
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        std::thread::spawn(move || {
            let client = kvs.client();
            let mut errors = 0u64;
            let mut ops = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                i += 1;
                let key = key_for(i % 600, 8);
                let result = if i.is_multiple_of(5) {
                    client.update(&key, &[9u8; 64])
                } else {
                    client.lookup(&key).map(|_| ())
                };
                ops += 1;
                completed.store(ops, Ordering::Release);
                if result.is_err() {
                    errors += 1;
                }
            }
            (ops, errors)
        })
    };

    // Grow to 4 KNs, then shrink back to 2, while traffic keeps flowing.
    let a = kvs.add_kn().unwrap();
    let b = kvs.add_kn().unwrap();
    assert_eq!(kvs.num_kns(), 4);
    kvs.remove_kn(a).unwrap();
    kvs.remove_kn(b).unwrap();
    assert_eq!(kvs.num_kns(), 2);
    // On a loaded host the reconfigurations can outrun the traffic thread's
    // start-up; let it complete some operations before stopping.
    while completed.load(Ordering::Acquire) < 100 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    let (ops, errors) = traffic.join().unwrap();
    assert!(ops > 0);
    assert_eq!(errors, 0, "client operations failed during reconfiguration");

    // Nothing was lost and Dinomo never copied data.
    let client = kvs.client();
    for i in 0..600u64 {
        assert!(
            client.lookup(&key_for(i, 8)).unwrap().is_some(),
            "key {i} lost"
        );
    }
    assert_eq!(kvs.bytes_reshuffled(), 0);
}

#[test]
fn dinomo_n_pays_for_reconfiguration_with_data_copies() {
    let dinomo = loaded_cluster(Variant::Dinomo, 2, 400);
    let dinomo_n = loaded_cluster(Variant::DinomoN, 2, 400);
    dinomo.add_kn().unwrap();
    dinomo_n.add_kn().unwrap();
    assert_eq!(dinomo.bytes_reshuffled(), 0, "Dinomo moves only ownership");
    assert!(
        dinomo_n.bytes_reshuffled() > 0,
        "the shared-nothing variant must physically reshuffle data"
    );
    // Both still serve every key.
    for kvs in [&dinomo, &dinomo_n] {
        let client = kvs.client();
        for i in 0..400u64 {
            assert!(client.lookup(&key_for(i, 8)).unwrap().is_some());
        }
    }
}

#[test]
fn repeated_failures_leave_a_consistent_single_node() {
    let kvs = loaded_cluster(Variant::Dinomo, 4, 500);
    // Fail three of the four nodes, one at a time.
    while kvs.num_kns() > 1 {
        let victim = kvs.kn_ids()[0];
        kvs.fail_kn(victim).unwrap();
        let client = kvs.client();
        for i in (0..500u64).step_by(7) {
            assert!(
                client.lookup(&key_for(i, 8)).unwrap().is_some(),
                "key {i} lost after failing KN {victim}"
            );
        }
    }
    assert_eq!(kvs.num_kns(), 1);
    // A failed node cannot be failed twice.
    let gone = 0u32;
    assert!(matches!(kvs.fail_kn(gone), Err(KvsError::NoNodes) | Ok(())) || kvs.num_kns() == 1);
}

#[test]
fn replication_cycle_survives_membership_changes() {
    let kvs = loaded_cluster(Variant::Dinomo, 3, 200);
    let hot = key_for(7, 8);
    let owners = kvs.replicate_key(&hot, 3).unwrap();
    assert_eq!(owners.len(), 3);
    // Fail one of the replicas; the key must stay readable and writable.
    kvs.fail_kn(owners[1]).unwrap();
    let client = kvs.client();
    client.update(&hot, b"after-failure").unwrap();
    assert_eq!(
        client.lookup(&hot).unwrap(),
        Some(b"after-failure".to_vec())
    );
    // De-replicate and keep going.
    kvs.dereplicate_key(&hot).unwrap();
    client.update(&hot, b"final").unwrap();
    assert_eq!(client.lookup(&hot).unwrap(), Some(b"final".to_vec()));
    assert_eq!(kvs.ownership().read().replication_factor(&hot), 1);
}

#[test]
fn batched_execute_survives_racing_membership_changes() {
    // Batches race add_kn/fail_kn: every op of every batch must resolve to a
    // correct per-op Reply (the client retries the rejected subset after
    // refreshing its routing metadata), and no acknowledged write may be
    // lost.
    let kvs = loaded_cluster(Variant::Dinomo, 2, 600);
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let traffic = {
        let kvs = kvs.clone();
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        std::thread::spawn(move || {
            let client = kvs.client();
            let mut batches = 0u64;
            let mut errors: Vec<String> = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                // A mixed batch of 24 lookups and 8 updates across the key
                // space.
                let ops: Vec<Op> = (0..32u64)
                    .map(|j| {
                        i += 1;
                        let key = key_for((i * 13 + j) % 600, 8);
                        if j % 4 == 3 {
                            Op::update(key, [7u8; 64])
                        } else {
                            Op::lookup(key)
                        }
                    })
                    .collect();
                let replies = client.execute(ops);
                assert_eq!(replies.len(), 32);
                errors.extend(
                    replies
                        .iter()
                        .filter_map(|r| r.err())
                        .map(|e| format!("batch {batches}: {e}")),
                );
                // Lookups of the pre-loaded key space must all hit.
                for reply in &replies {
                    if let Reply::Value(v) = reply {
                        assert!(
                            v.is_some(),
                            "loaded key read as missing mid-reconfiguration"
                        );
                    }
                }
                batches += 1;
                completed.store(batches, Ordering::Release);
            }
            (batches, errors)
        })
    };

    // Scale out, fail a node, scale back — all while batches are in flight.
    let added = kvs.add_kn().unwrap();
    let victim = kvs.kn_ids().into_iter().find(|&id| id != added).unwrap();
    kvs.fail_kn(victim).unwrap();
    let added2 = kvs.add_kn().unwrap();
    kvs.remove_kn(added2).unwrap();
    // On a loaded host the reconfigurations can outrun the traffic thread's
    // start-up; let it complete a few batches against the final topology
    // before stopping.
    while completed.load(Ordering::Acquire) < 5 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    let (batches, errors) = traffic.join().unwrap();
    assert!(batches >= 5, "no batches completed");
    assert!(
        errors.is_empty(),
        "batched ops failed during reconfiguration: {errors:?}"
    );

    // All data survived (committed writes were flushed before the failure).
    let client = kvs.client();
    for i in 0..600u64 {
        assert!(
            client.lookup(&key_for(i, 8)).unwrap().is_some(),
            "key {i} lost"
        );
    }
    assert_eq!(kvs.bytes_reshuffled(), 0);
}

#[test]
fn batches_to_a_stale_owner_reject_only_the_moved_subset() {
    // A node served a batch for keys it no longer fully owns: the non-owned
    // ops are rejected individually with NotOwner while the still-owned ops
    // in the same batch succeed — the contract `KvsClient::execute` builds
    // its retry loop on.
    let kvs = loaded_cluster(Variant::Dinomo, 2, 200);
    let node_id = kvs.kn_ids()[0];
    let node = kvs.kn(node_id).unwrap();
    let table = kvs.ownership();
    let mine: Vec<u64> = (0..200u64)
        .filter(|&i| table.read().primary_owner(&key_for(i, 8)) == Some(node_id))
        .collect();
    let theirs: Vec<u64> = (0..200u64)
        .filter(|&i| table.read().primary_owner(&key_for(i, 8)) != Some(node_id))
        .collect();
    assert!(!mine.is_empty() && !theirs.is_empty());

    // Interleave owned and non-owned keys in one batch sent to `node`.
    let ops: Vec<Op> = mine
        .iter()
        .take(4)
        .chain(theirs.iter().take(4))
        .map(|&i| Op::lookup(key_for(i, 8)))
        .collect();
    let results = node.run_batch(&ops);
    for (idx, result) in results.iter().enumerate() {
        if idx < 4 {
            assert!(
                matches!(result, Ok(Some(_))),
                "owned op {idx} should have been served, got {result:?}"
            );
        } else {
            assert!(
                matches!(result, Err(KvsError::NotOwner { .. })),
                "non-owned op {idx} should have been rejected, got {result:?}"
            );
        }
    }

    // Through the client the same mixed batch fully succeeds: the rejected
    // subset is transparently re-routed.
    let client = kvs.client();
    let ops: Vec<Op> = mine
        .iter()
        .take(4)
        .chain(theirs.iter().take(4))
        .map(|&i| Op::lookup(key_for(i, 8)))
        .collect();
    let replies = client.execute(ops);
    assert!(replies.iter().all(|r| r.value().is_some()), "{replies:?}");
}

#[test]
fn ownership_checks_reject_requests_to_non_owners() {
    let kvs = loaded_cluster(Variant::Dinomo, 2, 50);
    let key = key_for(1, 8);
    let owner = kvs.ownership().read().primary_owner(&key).unwrap();
    let other = kvs.kn_ids().into_iter().find(|&id| id != owner).unwrap();
    let wrong = kvs.kn(other).unwrap();
    match wrong.get(&key) {
        Err(KvsError::NotOwner { .. }) => {}
        other => panic!("expected NotOwner, got {other:?}"),
    }
    // The owner serves it fine.
    assert!(kvs.kn(owner).unwrap().get(&key).unwrap().is_some());
}
