//! End-to-end log-cleaning compaction: the skewed-overwrite acceptance
//! scenario (segments pinned by one live key reclaim only through the
//! compactor, space amplification stays bounded, reads stay correct
//! throughout — including through KN shortcut caches), the cell-pin rule
//! under the full replication protocol, and the timeline driver's GC
//! columns.

use dinomo::cluster::{DriverConfig, EventKind, ScriptedEvent, SimulationDriver};
use dinomo::dpm::GcConfig;
use dinomo::workload::{KeyDistribution, WorkloadConfig, WorkloadMix};
use dinomo::{Kvs, KvsBuilder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One KN / one shard / tiny segments, compactor knobs on but background
/// off — tests drive `compact_once` deterministically.
fn gc_cluster() -> Kvs {
    let mut dpm = dinomo::dpm::DpmConfig::small_for_tests();
    dpm.segment_bytes = 8 << 10;
    KvsBuilder::new()
        .small_for_tests()
        .initial_kns(1)
        .threads_per_kn(1)
        .write_batch_ops(4)
        .dpm(dpm)
        .gc(GcConfig {
            background: false,
            dead_fraction: 0.25,
            ..GcConfig::aggressive()
        })
        .build()
        .unwrap()
}

fn space_amplification(kvs: &Kvs) -> f64 {
    let dpm = kvs.stats().dpm;
    dpm.segment_bytes_allocated as f64 / dpm.live_bytes.max(1) as f64
}

/// The acceptance scenario: every sealed segment keeps one live "pin" key
/// while the rest of its bytes are overwritten stale. `run_gc` (the
/// all-dead policy) frees nothing; the compactor relocates the pins,
/// reclaims the victims, and brings allocated ÷ live bytes under the
/// bound — with every read (shortcut caches included) returning the live
/// value throughout.
#[test]
fn skewed_overwrite_reclaims_only_through_the_compactor() {
    const ROUNDS: u32 = 25;
    const BOUND: f64 = 2.5;
    let kvs = gc_cluster();
    let client = kvs.client();
    for round in 0..ROUNDS {
        // One long-lived key per ~segment of churn...
        client
            .insert(format!("pin{round:04}").as_bytes(), &[0xCC; 64])
            .unwrap();
        // ...plus filler that the next round supersedes.
        for i in 0..8u32 {
            client
                .update(format!("cold{i}").as_bytes(), &[round as u8; 512])
                .unwrap();
        }
    }
    kvs.quiesce().unwrap();

    assert_eq!(
        kvs.dpm().run_gc(),
        0,
        "every sealed segment holds a live pin key: the all-dead policy \
         must reclaim nothing"
    );
    let before = kvs.stats().dpm;
    let amp_before = space_amplification(&kvs);
    assert!(
        amp_before > BOUND,
        "the workload must actually build up space amplification \
         (got {amp_before:.2} over {} segments)",
        before.segments_allocated
    );

    // Readers hammer the pinned keys *while* the compactor relocates
    // them: shortcut-cache hits must never serve freed bytes. The main
    // thread keeps running compaction passes (idempotent once everything
    // is reclaimed) until the reader finishes its sweeps.
    let reader_done = Arc::new(AtomicBool::new(false));
    let reader = {
        let kvs = kvs.clone();
        let done = Arc::clone(&reader_done);
        std::thread::spawn(move || {
            let client = kvs.client();
            for _ in 0..20 {
                for round in 0..ROUNDS {
                    let key = format!("pin{round:04}");
                    assert_eq!(
                        client.lookup(key.as_bytes()).unwrap(),
                        Some(vec![0xCC; 64]),
                        "{key} read a stale or torn value during compaction"
                    );
                }
            }
            done.store(true, Ordering::Relaxed);
        })
    };
    let mut compacted = 0;
    // At least one pass always runs — the reader's cached lookups can
    // finish before this thread is scheduled — and passes are idempotent
    // once everything reclaimable is gone.
    loop {
        compacted += kvs.dpm().compact_once().segments_compacted;
        if reader_done.load(Ordering::Relaxed) {
            break;
        }
    }
    reader.join().unwrap();
    assert!(compacted > 0, "compactor reclaimed nothing: {before:?}");

    let after = kvs.stats().dpm;
    let amp_after = space_amplification(&kvs);
    assert!(
        amp_after <= BOUND,
        "space amplification must drop under the bound: {amp_before:.2} -> \
         {amp_after:.2} ({before:?} -> {after:?})"
    );
    assert!(after.segments_allocated < before.segments_allocated);
    assert!(after.bytes_relocated > 0);

    // Final verification through fresh lookups: pins and the last filler
    // round survive relocation byte-for-byte.
    for round in 0..ROUNDS {
        assert_eq!(
            client.lookup(format!("pin{round:04}").as_bytes()).unwrap(),
            Some(vec![0xCC; 64])
        );
    }
    for i in 0..8u32 {
        assert_eq!(
            client.lookup(format!("cold{i}").as_bytes()).unwrap(),
            Some(vec![(ROUNDS - 1) as u8; 512])
        );
    }
}

/// The cell-pin rule through the full replication protocol: a replicated
/// key's entry (live cell) and a deleted replicated key's entry
/// (tombstoned cell) both keep their segments unreclaimed until
/// dereplication dismantles the cell — and the key's visible state is
/// never corrupted by compaction around it.
#[test]
fn replicated_and_deleted_keys_pin_their_segments_end_to_end() {
    let kvs = {
        let mut dpm = dinomo::dpm::DpmConfig::small_for_tests();
        dpm.segment_bytes = 8 << 10;
        KvsBuilder::new()
            .small_for_tests()
            .initial_kns(2)
            .write_batch_ops(1)
            .dpm(dpm)
            .gc(GcConfig {
                background: false,
                dead_fraction: 0.05,
                ..GcConfig::aggressive()
            })
            .build()
            .unwrap()
    };
    let client = kvs.client();
    client.insert(b"hot", b"replicated-value").unwrap();
    // Dead filler around the hot key so its segment is a prime victim.
    for round in 0..3u32 {
        for i in 0..8u32 {
            client
                .update(format!("fill{i}").as_bytes(), &[round as u8; 512])
                .unwrap();
        }
    }
    kvs.quiesce().unwrap();
    kvs.replicate_key(b"hot", 2).unwrap();
    client.refresh_routing();

    // Live cell: compaction may reclaim filler segments but must leave
    // the cell's target untouched and the value readable.
    for _ in 0..5 {
        kvs.dpm().compact_once();
    }
    assert_eq!(
        client.lookup(b"hot").unwrap(),
        Some(b"replicated-value".to_vec())
    );

    // Tombstoned cell: the acked delete stays visible (no resurrection
    // from a freed-and-reused entry) while the cell stands.
    client.delete(b"hot").unwrap();
    kvs.quiesce().unwrap();
    for _ in 0..5 {
        kvs.dpm().compact_once();
        kvs.dpm().run_gc();
        assert_eq!(client.lookup(b"hot").unwrap(), None, "delete resurrected");
    }

    // Dereplication dismantles the cell; the key stays deleted, a
    // re-insert wins, and compaction still works afterwards.
    kvs.dereplicate_key(b"hot").unwrap();
    assert_eq!(client.lookup(b"hot").unwrap(), None);
    client.insert(b"hot", b"v2").unwrap();
    kvs.quiesce().unwrap();
    kvs.dpm().compact_once();
    assert_eq!(client.lookup(b"hot").unwrap(), Some(b"v2".to_vec()));
}

/// Concurrent controllers: with the reconfiguration mutex, interleaved
/// membership and replication hand-offs from multiple threads can no
/// longer corrupt each other — the cluster stays serviceable and every
/// key readable.
#[test]
fn concurrent_controllers_serialize_cleanly() {
    let kvs = KvsBuilder::new()
        .small_for_tests()
        .initial_kns(3)
        .write_batch_ops(1)
        .build()
        .unwrap();
    let client = kvs.client();
    for i in 0..32u32 {
        client
            .insert(format!("key{i:02}").as_bytes(), &[i as u8; 64])
            .unwrap();
    }
    kvs.quiesce().unwrap();

    let controllers: Vec<_> = (0..3u32)
        .map(|c| {
            let kvs = kvs.clone();
            std::thread::spawn(move || {
                for round in 0..6u32 {
                    match (c + round) % 3 {
                        0 => {
                            if kvs.num_kns() < 5 {
                                let _ = kvs.add_kn();
                            } else if let Some(&id) = kvs.kn_ids().last() {
                                let _ = kvs.remove_kn(id);
                            }
                        }
                        1 => {
                            let key = format!("key{:02}", (c * 7 + round) % 32);
                            let _ = kvs.replicate_key(key.as_bytes(), 2);
                        }
                        _ => {
                            let key = format!("key{:02}", (c * 7 + round) % 32);
                            let _ = kvs.dereplicate_key(key.as_bytes());
                        }
                    }
                }
            })
        })
        .collect();
    // Client traffic runs underneath the churn.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let kvs = kvs.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let client = kvs.client();
            while !stop.load(Ordering::Relaxed) {
                for i in 0..32u32 {
                    let got = client.lookup(format!("key{i:02}").as_bytes()).unwrap();
                    assert_eq!(got, Some(vec![i as u8; 64]), "key{i:02}");
                }
            }
        })
    };
    for h in controllers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().unwrap();
    kvs.quiesce().unwrap();
    for i in 0..32u32 {
        assert_eq!(
            client.lookup(format!("key{i:02}").as_bytes()).unwrap(),
            Some(vec![i as u8; 64])
        );
    }
}

/// The timeline driver surfaces compaction: with the background compactor
/// on and a skewed-overwrite workload, epochs report reclaimed segments,
/// relocated bytes and a sane space-amplification figure.
#[test]
fn timeline_reports_compaction_columns() {
    let mut dpm = dinomo::dpm::DpmConfig::small_for_tests();
    dpm.segment_bytes = 8 << 10;
    let kvs = Arc::new(
        KvsBuilder::new()
            .small_for_tests()
            .initial_kns(2)
            .dpm(dpm)
            .gc(GcConfig {
                dead_fraction: 0.25,
                ..GcConfig::aggressive()
            })
            .build()
            .unwrap(),
    );
    let driver = SimulationDriver::new(
        kvs,
        DriverConfig {
            epoch_ms: 40,
            total_epochs: 6,
            max_clients: 2,
            initial_clients: 2,
            workload: WorkloadConfig {
                num_keys: 64,
                value_len: 256,
                mix: WorkloadMix::SKEWED_OVERWRITE,
                distribution: KeyDistribution::HIGH_SKEW,
                seed: 9,
                key_len: 8,
                max_scan_len: 16,
            },
            preload: true,
            key_sample_every: 8,
            batch_size: 8,
            ..DriverConfig::default()
        },
    );
    let rows = driver.run(&[ScriptedEvent {
        at_epoch: 2,
        event: EventKind::AddNode,
    }]);
    assert_eq!(rows.len(), 6);
    assert!(rows.iter().map(|r| r.ops).sum::<u64>() > 0);
    let compacted: u64 = rows.iter().map(|r| r.segments_compacted).sum();
    let relocated: u64 = rows.iter().map(|r| r.bytes_relocated).sum();
    assert!(
        compacted > 0 && relocated > 0,
        "background compactor must show up in the timeline: {rows:?}"
    );
    assert!(rows.iter().all(|r| r.space_amplification >= 0.0));
    // Under continuous compaction the footprint stays bounded.
    let last = rows.last().unwrap();
    assert!(
        last.space_amplification < 20.0,
        "space amplification ran away: {rows:?}"
    );
}
