//! Wakeup-latency guard for the shard-worker executor under a trickle.
//!
//! A worker that parks on every empty-queue check makes the producer pay a
//! full condvar wakeup (syscall + scheduler latency) per handoff; under a
//! trickle of small sub-batches that wakeup *is* the executor's latency
//! floor, and it is what sizes the inline-vs-enqueue crossover
//! (`executor_min_sub_batch`, see the `kn_scaling` bench). The bounded
//! micro-spin in `BoundedQueue::pop` keeps the worker hot across short
//! inter-arrival gaps, so trickle handoff stays within a small factor of
//! inline execution.
//!
//! This test is a *regression guard*, not a microbenchmark: it asserts the
//! pooled trickle's median per-batch latency stays within a generous
//! factor-plus-slack of the inline baseline, a bound that survives noisy
//! CI hosts but trips on gross wakeup regressions (sleep-based parking,
//! lost wakeups, a dropped spin) that would shift the crossover by orders
//! of magnitude.

use dinomo::{Kvs, Op, Reply};
use std::time::{Duration, Instant};

/// Build a single-node, single-shard cluster so every 2-op batch becomes
/// exactly one sub-batch on one queue (or runs inline with the executor
/// disabled).
fn trickle_cluster(queue_depth: usize) -> Kvs {
    let kvs = Kvs::builder()
        .small_for_tests()
        .initial_kns(1)
        .threads_per_kn(1)
        .executor_queue_depth(queue_depth)
        // Every sub-batch takes the worker queue, however small — the
        // handoff itself is what this test measures.
        .executor_min_sub_batch(1)
        .build()
        .unwrap();
    let client = kvs.client();
    let replies = client.execute(vec![Op::insert("t0", "v0"), Op::insert("t1", "v1")]);
    assert!(replies.iter().all(Reply::is_ok));
    kvs
}

/// Busy-wait (not sleep — OS sleep jitter would swamp the measurement) so
/// consecutive batches arrive as a trickle rather than back-to-back.
fn trickle_gap(gap: Duration) {
    let start = Instant::now();
    while start.elapsed() < gap {
        std::hint::spin_loop();
    }
}

/// Median per-batch latency of `iters` 2-lookup batches with a trickle
/// gap between them.
fn median_batch_latency(client: &dinomo::core::KvsClient, iters: usize) -> Duration {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        trickle_gap(Duration::from_micros(25));
        let start = Instant::now();
        let replies = client.execute(vec![Op::lookup("t0"), Op::lookup("t1")]);
        samples.push(start.elapsed());
        debug_assert!(replies.iter().all(Reply::is_ok));
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[test]
fn trickle_handoff_latency_stays_near_inline() {
    let pooled_kvs = trickle_cluster(8);
    let inline_kvs = trickle_cluster(0);
    let pooled = pooled_kvs.client();
    let inline = inline_kvs.client();

    // Warm caches and code paths.
    median_batch_latency(&pooled, 200);
    median_batch_latency(&inline, 200);

    // Interleaved rounds so time-varying host noise hits both sides.
    let rounds = 4;
    let iters = 500;
    let mut pooled_medians = Vec::with_capacity(rounds);
    let mut inline_medians = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        inline_medians.push(median_batch_latency(&inline, iters));
        pooled_medians.push(median_batch_latency(&pooled, iters));
    }
    pooled_medians.sort_unstable();
    inline_medians.sort_unstable();
    let pooled_med = pooled_medians[rounds / 2];
    let inline_med = inline_medians[rounds / 2];

    // The trickle really exercised the worker queue, not the inline
    // fallback.
    let sub_batches: u64 = pooled_kvs.stats().kns.iter().map(|k| k.sub_batches).sum();
    assert!(
        sub_batches as usize >= rounds * iters,
        "pooled trickle did not go through the worker queue ({sub_batches} sub-batches)"
    );
    assert!(pooled_kvs
        .stats()
        .kns
        .iter()
        .all(|k| k.busy_rejections == 0));

    // The guard: a 2-op handoff may cost a few multiples of inline
    // execution (queue push + possible wakeup) but never orders of
    // magnitude — that is what would move the `kn_scaling`
    // inline/pooled crossover.
    let bound = inline_med * 12 + Duration::from_micros(100);
    assert!(
        pooled_med <= bound,
        "trickle handoff regressed: pooled median {pooled_med:?} vs inline \
         median {inline_med:?} (bound {bound:?})"
    );
}
