//! Linearizability checks for single-key reads and writes (the consistency
//! guarantee §3.2 claims), including for selectively-replicated keys where
//! several KNs may write the same key concurrently.
//!
//! Each scenario is verified twice:
//!
//! * **inline probes** — the original hand-rolled invariants (monotonic
//!   register values, never reading an unacknowledged write) that fail
//!   *during* the run with a precise message; and
//! * **the history checker** — every client records through the
//!   [`dinomo::core::trace`] hook and the merged history must pass the
//!   per-key linearizability checker (`dinomo::check`), which catches
//!   reorderings and lost/resurrected updates the probes cannot encode.

use dinomo::check::check_history;
use dinomo::core::trace::HistoryRecorder;
use dinomo::{Kvs, KvsConfig, Op, Reply, Variant};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A single writer monotonically increments a counter value stored under one
/// key while several readers poll it.  Linearizability of a single register
/// with one writer implies every reader observes a non-decreasing sequence,
/// and never a value the writer has not yet written.
///
/// All clients record into `recorder`; callers run the checker on the
/// drained history afterwards.
fn monotonic_register_check(
    kvs: &Kvs,
    recorder: &Arc<HistoryRecorder>,
    key: &[u8],
    writes: u64,
    readers: usize,
) {
    let stop = Arc::new(AtomicBool::new(false));
    let high_water = Arc::new(AtomicU64::new(0));
    let client = kvs.client().with_recorder(recorder.handle(0));
    client.insert(key, &0u64.to_be_bytes()).unwrap();

    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let kvs = kvs.clone();
            let stop = Arc::clone(&stop);
            let high_water = Arc::clone(&high_water);
            let key = key.to_vec();
            let handle = recorder.handle(1 + r as u64);
            std::thread::spawn(move || {
                let client = kvs.client().with_recorder(handle);
                let mut last_seen = 0u64;
                let mut observations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let Some(bytes) = client.lookup(&key).unwrap() else {
                        panic!("register disappeared");
                    };
                    let value = u64::from_be_bytes(bytes[..8].try_into().unwrap());
                    assert!(
                        value >= last_seen,
                        "non-monotonic read: saw {value} after {last_seen}"
                    );
                    assert!(
                        value <= high_water.load(Ordering::Acquire),
                        "read {value} which was never acknowledged as written"
                    );
                    last_seen = value;
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for v in 1..=writes {
        // Announce the write before issuing it: readers may observe it any
        // time after the KVS node starts applying it.
        high_water.store(v, Ordering::Release);
        client.update(key, &v.to_be_bytes()).unwrap();
    }
    stop.store(true, Ordering::Release);
    let total_observations: u64 = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_observations > 0, "readers never ran");
    assert_eq!(
        client
            .lookup(key)
            .unwrap()
            .map(|b| u64::from_be_bytes(b[..8].try_into().unwrap())),
        Some(writes)
    );
}

/// Drain the recorder and run the per-key checker over everything the
/// scenario recorded.
fn assert_history_linearizable(recorder: &Arc<HistoryRecorder>, scenario: &str) {
    let history = recorder.drain();
    assert!(!history.is_empty(), "{scenario}: nothing was recorded");
    let stats = check_history(&history)
        .unwrap_or_else(|e| panic!("{scenario}: recorded history failed the checker: {e}"));
    assert!(stats.ops > 0);
}

#[test]
fn owned_key_reads_are_linearizable() {
    // Immediate visibility matters for this test, so writes are flushed
    // per operation (batch size 1).
    let kvs = Kvs::new(KvsConfig {
        write_batch_ops: 1,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();
    let recorder = HistoryRecorder::new();
    monotonic_register_check(&kvs, &recorder, b"register", 2_000, 3);
    assert_history_linearizable(&recorder, "owned register");
}

#[test]
fn replicated_key_reads_are_linearizable() {
    let kvs = Kvs::new(KvsConfig {
        write_batch_ops: 1,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();
    let recorder = HistoryRecorder::new();
    let client = kvs.client().with_recorder(recorder.handle(99));
    client.insert(b"hot-register", &0u64.to_be_bytes()).unwrap();
    kvs.replicate_key(b"hot-register", 2).unwrap();
    monotonic_register_check(&kvs, &recorder, b"hot-register", 1_000, 3);
    assert_history_linearizable(&recorder, "replicated register");
}

#[test]
fn batched_register_reads_are_linearizable_against_batched_writes() {
    // The monotonic-register argument, driven through `execute`: one writer
    // increments the register via single-op batches while readers poll it
    // in mixed batches, racing add_kn/fail_kn reconfigurations. Per-op
    // replies must never show a value going backwards or a value that was
    // never acknowledged as written.
    let kvs = Kvs::new(KvsConfig {
        write_batch_ops: 1,
        initial_kns: 2,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();
    let key = b"batched-register".to_vec();
    let recorder = HistoryRecorder::new();
    let client = kvs.client().with_recorder(recorder.handle(0));
    client.insert(&key, &0u64.to_be_bytes()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let high_water = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let kvs = kvs.clone();
            let stop = Arc::clone(&stop);
            let high_water = Arc::clone(&high_water);
            let key = key.clone();
            let handle = recorder.handle(1 + r as u64);
            std::thread::spawn(move || {
                let client = kvs.client().with_recorder(handle);
                let mut last_seen = 0u64;
                let mut observations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // A batch of 8 reads of the same register: replies are
                    // positional, and each must respect the register's
                    // history.
                    let replies = client.execute((0..8).map(|_| Op::lookup(&key)).collect());
                    for reply in replies {
                        let Reply::Value(Some(bytes)) = reply else {
                            panic!("register read failed: {reply:?}");
                        };
                        let value = u64::from_be_bytes(bytes[..8].try_into().unwrap());
                        assert!(value >= last_seen, "read {value} after {last_seen}");
                        assert!(value <= high_water.load(Ordering::Acquire));
                        last_seen = value;
                        observations += 1;
                    }
                }
                observations
            })
        })
        .collect();

    // The writer increments through the batched path while the cluster
    // reconfigures under it.
    let mut added = None;
    for v in 1..=600u64 {
        high_water.store(v, Ordering::Release);
        let replies = client.execute(vec![Op::update(&key, v.to_be_bytes())]);
        assert!(replies[0].is_ok(), "write {v} failed: {replies:?}");
        match v {
            200 => added = Some(kvs.add_kn().unwrap()),
            400 => kvs.fail_kn(added.take().unwrap()).unwrap(),
            _ => {}
        }
    }
    stop.store(true, Ordering::Release);
    let observations: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(observations > 0, "readers never observed the register");
    assert_eq!(
        client
            .lookup(&key)
            .unwrap()
            .map(|b| u64::from_be_bytes(b[..8].try_into().unwrap())),
        Some(600)
    );
    assert_history_linearizable(&recorder, "batched register under reconfiguration");
}

#[test]
fn concurrent_writers_on_a_replicated_key_never_lose_the_last_write() {
    // Several clients hammer the same replicated key; after they finish, the
    // value must be one of the last acknowledged writes (freshness) and every
    // intermediate read must be a value some writer actually wrote.
    let kvs = Kvs::new(
        KvsConfig {
            write_batch_ops: 1,
            initial_kns: 3,
            ..KvsConfig::small_for_tests()
        }
        .with_variant(Variant::Dinomo),
    )
    .unwrap();
    let recorder = HistoryRecorder::new();
    let client = kvs.client().with_recorder(recorder.handle(0));
    client.insert(b"contended", b"w0-0").unwrap();
    kvs.replicate_key(b"contended", 3).unwrap();

    let writers = 3u32;
    let per_writer = 300u32;
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let kvs = kvs.clone();
            let handle = recorder.handle(1 + w as u64);
            std::thread::spawn(move || {
                let client = kvs.client().with_recorder(handle);
                for i in 0..per_writer {
                    client
                        .update(b"contended", format!("w{w}-{i}").as_bytes())
                        .unwrap();
                }
            })
        })
        .collect();
    let reader = {
        let kvs = kvs.clone();
        let handle = recorder.handle(10);
        std::thread::spawn(move || {
            let client = kvs.client().with_recorder(handle);
            for _ in 0..500 {
                let v = client
                    .lookup(b"contended")
                    .unwrap()
                    .expect("value must exist");
                let s = String::from_utf8(v).expect("utf8 value");
                assert!(
                    s.starts_with('w') && s.contains('-'),
                    "unexpected value {s}"
                );
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    reader.join().unwrap();
    let final_value = String::from_utf8(client.lookup(b"contended").unwrap().unwrap()).unwrap();
    // The final value must be the last write of one of the writers.
    let expected: Vec<String> = (0..writers)
        .map(|w| format!("w{w}-{}", per_writer - 1))
        .collect();
    assert!(
        expected.contains(&final_value),
        "final value {final_value} is not any writer's last write {expected:?}"
    );
    // Note: writer 0's "w0-0" update is a distinct op from the initial
    // insert of the same bytes — the checker handles duplicate values,
    // this history just takes a little more search than unique-value ones.
    assert_history_linearizable(&recorder, "contended replicated key");
}
