//! Linearizability checks for single-key reads and writes (the consistency
//! guarantee §3.2 claims), including for selectively-replicated keys where
//! several KNs may write the same key concurrently.

use dinomo::{Kvs, KvsConfig, Op, Reply, Variant};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A single writer monotonically increments a counter value stored under one
/// key while several readers poll it.  Linearizability of a single register
/// with one writer implies every reader observes a non-decreasing sequence,
/// and never a value the writer has not yet written.
fn monotonic_register_check(kvs: &Kvs, key: &[u8], writes: u64, readers: usize) {
    let stop = Arc::new(AtomicBool::new(false));
    let high_water = Arc::new(AtomicU64::new(0));
    let client = kvs.client();
    client.insert(key, &0u64.to_be_bytes()).unwrap();

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let kvs = kvs.clone();
            let stop = Arc::clone(&stop);
            let high_water = Arc::clone(&high_water);
            let key = key.to_vec();
            std::thread::spawn(move || {
                let client = kvs.client();
                let mut last_seen = 0u64;
                let mut observations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let Some(bytes) = client.lookup(&key).unwrap() else {
                        panic!("register disappeared");
                    };
                    let value = u64::from_be_bytes(bytes[..8].try_into().unwrap());
                    assert!(
                        value >= last_seen,
                        "non-monotonic read: saw {value} after {last_seen}"
                    );
                    assert!(
                        value <= high_water.load(Ordering::Acquire),
                        "read {value} which was never acknowledged as written"
                    );
                    last_seen = value;
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for v in 1..=writes {
        // Announce the write before issuing it: readers may observe it any
        // time after the KVS node starts applying it.
        high_water.store(v, Ordering::Release);
        client.update(key, &v.to_be_bytes()).unwrap();
    }
    stop.store(true, Ordering::Release);
    let total_observations: u64 = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_observations > 0, "readers never ran");
    assert_eq!(
        client
            .lookup(key)
            .unwrap()
            .map(|b| u64::from_be_bytes(b[..8].try_into().unwrap())),
        Some(writes)
    );
}

#[test]
fn owned_key_reads_are_linearizable() {
    // Immediate visibility matters for this test, so writes are flushed
    // per operation (batch size 1).
    let kvs = Kvs::new(KvsConfig {
        write_batch_ops: 1,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();
    monotonic_register_check(&kvs, b"register", 2_000, 3);
}

#[test]
fn replicated_key_reads_are_linearizable() {
    let kvs = Kvs::new(KvsConfig {
        write_batch_ops: 1,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();
    let client = kvs.client();
    client.insert(b"hot-register", &0u64.to_be_bytes()).unwrap();
    kvs.replicate_key(b"hot-register", 2).unwrap();
    monotonic_register_check(&kvs, b"hot-register", 1_000, 3);
}

#[test]
fn batched_register_reads_are_linearizable_against_batched_writes() {
    // The monotonic-register argument, driven through `execute`: one writer
    // increments the register via single-op batches while readers poll it
    // in mixed batches, racing add_kn/fail_kn reconfigurations. Per-op
    // replies must never show a value going backwards or a value that was
    // never acknowledged as written.
    let kvs = Kvs::new(KvsConfig {
        write_batch_ops: 1,
        initial_kns: 2,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();
    let key = b"batched-register".to_vec();
    let client = kvs.client();
    client.insert(&key, &0u64.to_be_bytes()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let high_water = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let kvs = kvs.clone();
            let stop = Arc::clone(&stop);
            let high_water = Arc::clone(&high_water);
            let key = key.clone();
            std::thread::spawn(move || {
                let client = kvs.client();
                let mut last_seen = 0u64;
                let mut observations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // A batch of 8 reads of the same register: replies are
                    // positional, and each must respect the register's
                    // history.
                    let replies = client.execute((0..8).map(|_| Op::lookup(&key)).collect());
                    for reply in replies {
                        let Reply::Value(Some(bytes)) = reply else {
                            panic!("register read failed: {reply:?}");
                        };
                        let value = u64::from_be_bytes(bytes[..8].try_into().unwrap());
                        assert!(value >= last_seen, "read {value} after {last_seen}");
                        assert!(value <= high_water.load(Ordering::Acquire));
                        last_seen = value;
                        observations += 1;
                    }
                }
                observations
            })
        })
        .collect();

    // The writer increments through the batched path while the cluster
    // reconfigures under it.
    let mut added = None;
    for v in 1..=600u64 {
        high_water.store(v, Ordering::Release);
        let replies = client.execute(vec![Op::update(&key, v.to_be_bytes())]);
        assert!(replies[0].is_ok(), "write {v} failed: {replies:?}");
        match v {
            200 => added = Some(kvs.add_kn().unwrap()),
            400 => kvs.fail_kn(added.take().unwrap()).unwrap(),
            _ => {}
        }
    }
    stop.store(true, Ordering::Release);
    let observations: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(observations > 0, "readers never observed the register");
    assert_eq!(
        client
            .lookup(&key)
            .unwrap()
            .map(|b| u64::from_be_bytes(b[..8].try_into().unwrap())),
        Some(600)
    );
}

#[test]
fn concurrent_writers_on_a_replicated_key_never_lose_the_last_write() {
    // Several clients hammer the same replicated key; after they finish, the
    // value must be one of the last acknowledged writes (freshness) and every
    // intermediate read must be a value some writer actually wrote.
    let kvs = Kvs::new(
        KvsConfig {
            write_batch_ops: 1,
            initial_kns: 3,
            ..KvsConfig::small_for_tests()
        }
        .with_variant(Variant::Dinomo),
    )
    .unwrap();
    let client = kvs.client();
    client.insert(b"contended", b"w0-0").unwrap();
    kvs.replicate_key(b"contended", 3).unwrap();

    let writers = 3u32;
    let per_writer = 300u32;
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let kvs = kvs.clone();
            std::thread::spawn(move || {
                let client = kvs.client();
                for i in 0..per_writer {
                    client
                        .update(b"contended", format!("w{w}-{i}").as_bytes())
                        .unwrap();
                }
            })
        })
        .collect();
    let reader = {
        let kvs = kvs.clone();
        std::thread::spawn(move || {
            let client = kvs.client();
            for _ in 0..500 {
                let v = client
                    .lookup(b"contended")
                    .unwrap()
                    .expect("value must exist");
                let s = String::from_utf8(v).expect("utf8 value");
                assert!(
                    s.starts_with('w') && s.contains('-'),
                    "unexpected value {s}"
                );
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    reader.join().unwrap();
    let final_value = String::from_utf8(client.lookup(b"contended").unwrap().unwrap()).unwrap();
    // The final value must be the last write of one of the writers.
    let expected: Vec<String> = (0..writers)
        .map(|w| format!("w{w}-{}", per_writer - 1))
        .collect();
    assert!(
        expected.contains(&final_value),
        "final value {final_value} is not any writer's last write {expected:?}"
    );
}
