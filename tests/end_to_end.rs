//! Cross-crate integration tests: full workloads driven through the public
//! API of the umbrella crate, comparing Dinomo, its variants and Clover.

use dinomo::workload::{key_for, Operation, WorkloadConfig, WorkloadGenerator};
use dinomo::{CloverConfig, CloverKvs, KeyDistribution, Kvs, KvsConfig, Variant, WorkloadMix};
use std::collections::HashMap;

fn workload(mix: WorkloadMix, keys: u64) -> WorkloadConfig {
    WorkloadConfig {
        num_keys: keys,
        key_len: 8,
        value_len: 64,
        mix,
        distribution: KeyDistribution::MODERATE_SKEW,
        seed: 99,
        max_scan_len: 16,
    }
}

/// Replay a workload against a map of closures
/// (insert/update/read/delete/scan) and an in-memory model, checking every
/// read and scan against the model.
fn run_against_model<I, U, R, D, S>(
    mut insert: I,
    mut update: U,
    mut read: R,
    mut delete: D,
    mut scan: S,
    mix: WorkloadMix,
    ops: u64,
) where
    I: FnMut(&[u8], &[u8]),
    U: FnMut(&[u8], &[u8]),
    R: FnMut(&[u8]) -> Option<Vec<u8>>,
    D: FnMut(&[u8]),
    S: FnMut(&[u8], usize) -> Vec<(Vec<u8>, Vec<u8>)>,
{
    let config = workload(mix, 400);
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let generator = WorkloadGenerator::new(config);
    for (k, v) in generator.load_phase() {
        insert(&k, &v);
        model.insert(k, v);
    }
    let mut generator = WorkloadGenerator::new(config);
    for i in 0..ops {
        match generator.next_op() {
            Operation::Read(k) => {
                assert_eq!(read(&k), model.get(&k).cloned(), "read mismatch at op {i}");
            }
            Operation::Update(k, v) => {
                update(&k, &v);
                model.insert(k, v);
            }
            Operation::Insert(k, v) => {
                insert(&k, &v);
                model.insert(k, v);
            }
            Operation::Delete(k) => {
                delete(&k);
                model.remove(&k);
            }
            Operation::Scan(start, n) => {
                let mut expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .iter()
                    .filter(|(k, _)| k.as_slice() >= start.as_slice())
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                expected.sort();
                expected.truncate(n);
                assert_eq!(scan(&start, n), expected, "scan mismatch at op {i}");
            }
        }
    }
    // Final full verification.
    for (k, v) in &model {
        assert_eq!(read(k).as_ref(), Some(v), "final state mismatch for {k:?}");
    }
}

#[test]
fn dinomo_variants_match_a_model_under_mixed_workloads() {
    for variant in [Variant::Dinomo, Variant::DinomoS, Variant::DinomoN] {
        for mix in [
            WorkloadMix::WRITE_HEAVY_UPDATE,
            WorkloadMix::READ_MOSTLY_INSERT,
            // Range scans against the model: the ordered index, the
            // unmerged-overlay merge and the multi-node fan-out must agree
            // with a sorted view of a plain map, every time.
            WorkloadMix::CRUD_SCAN,
        ] {
            let kvs = Kvs::new(KvsConfig::small_for_tests().with_variant(variant)).unwrap();
            let client = kvs.client();
            run_against_model(
                |k, v| client.insert(k, v).unwrap(),
                |k, v| client.update(k, v).unwrap(),
                |k| client.lookup(k).unwrap(),
                |k| client.delete(k).unwrap(),
                |start, n| client.scan(start, n).unwrap(),
                mix,
                1_500,
            );
        }
    }
}

#[test]
fn clover_matches_a_model_under_mixed_workloads() {
    let kvs = CloverKvs::new(CloverConfig::small_for_tests()).unwrap();
    let client = kvs.client();
    run_against_model(
        |k, v| client.insert(k, v).unwrap(),
        |k, v| client.update(k, v).unwrap(),
        |k| client.lookup(k).unwrap(),
        |k| client.delete(k).unwrap(),
        |_, _| unreachable!("the mix has no scans; Clover has no ordered index"),
        WorkloadMix::WRITE_HEAVY_UPDATE,
        1_500,
    );
}

#[test]
fn dinomo_uses_fewer_round_trips_than_clover() {
    // The headline mechanism of the paper: ownership partitioning + DAC keep
    // the round trips per operation far below a shared-everything,
    // shortcut-only design.
    let keys = 1_000u64;
    let reads = 4_000u64;

    let kvs = Kvs::new(KvsConfig {
        initial_kns: 4,
        cache_bytes_per_kn: 1 << 20,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();
    let dinomo_client = kvs.client();
    let clover = CloverKvs::new(CloverConfig {
        initial_kns: 4,
        cache_bytes_per_kn: 1 << 20,
        ..CloverConfig::small_for_tests()
    })
    .unwrap();
    let clover_client = clover.client();

    for i in 0..keys {
        let value = vec![(i % 251) as u8; 64];
        dinomo_client.insert(&key_for(i, 8), &value).unwrap();
        clover_client.insert(&key_for(i, 8), &value).unwrap();
    }
    kvs.quiesce().unwrap();
    let dinomo_before = kvs.stats();
    let clover_before = clover.stats();

    for i in 0..reads {
        let id = (i * i + 7) % keys;
        // Interleave a few updates so Clover's chains grow as they would in
        // a mixed workload.
        if i % 10 == 0 {
            dinomo_client.update(&key_for(id, 8), &[1u8; 64]).unwrap();
            clover_client.update(&key_for(id, 8), &[1u8; 64]).unwrap();
        } else {
            dinomo_client.lookup(&key_for(id, 8)).unwrap();
            clover_client.lookup(&key_for(id, 8)).unwrap();
        }
    }
    let d_ops = kvs.stats().total_ops() - dinomo_before.total_ops();
    let c_ops = clover.stats().total_ops() - clover_before.total_ops();
    assert_eq!(d_ops, c_ops);
    let d_rts = kvs.stats().rts_per_op();
    let c_rts = clover.stats().rts_per_op();
    assert!(
        d_rts < c_rts,
        "Dinomo should need fewer RTs/op than Clover (got {d_rts:.2} vs {c_rts:.2})"
    );
    // And its hit ratio benefits from ownership partitioning + DAC.
    assert!(kvs.stats().cache_hit_ratio() > 0.5);
}

#[test]
fn stats_are_consistent_across_the_stack() {
    let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
    let client = kvs.client();
    for i in 0..300u64 {
        client.insert(&key_for(i, 8), &[0u8; 32]).unwrap();
    }
    for i in 0..300u64 {
        client.lookup(&key_for(i, 8)).unwrap();
    }
    let stats = kvs.stats();
    assert_eq!(stats.total_ops(), 600);
    let sum_reads: u64 = stats.kns.iter().map(|k| k.reads).sum();
    let sum_writes: u64 = stats.kns.iter().map(|k| k.writes).sum();
    assert_eq!(sum_reads, 300);
    assert_eq!(sum_writes, 300);
    assert!(stats.dpm.index_len <= 300);
    assert_eq!(stats.ownership_version, kvs.ownership().read().version());
}
