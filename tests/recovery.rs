//! Durability and crash recovery: commit markers, torn-write detection, and
//! the "committed data is never lost" guarantee across simulated DPM power
//! failures and KVS-node crashes.

use dinomo::dpm::{DpmConfig, DpmNode, LogWriter};
use dinomo::pclht::PclhtConfig;
use dinomo::pmem::PmemConfig;
use dinomo::simnet::Nic;
use dinomo::workload::key_for;
use dinomo::{Kvs, KvsConfig};
use std::sync::Arc;

fn tracked_dpm() -> Arc<DpmNode> {
    Arc::new(
        DpmNode::new(DpmConfig {
            pool: PmemConfig {
                capacity_bytes: 32 << 20,
                track_persistence: true,
                ..PmemConfig::default()
            },
            segment_bytes: 64 << 10,
            flush_batch_bytes: 8 << 10,
            merge_threads: 1,
            unmerged_segment_threshold: 2,
            index: PclhtConfig {
                initial_buckets: 512,
                ..PclhtConfig::default()
            },
            inject_media_delay: false,
            gc: dinomo::dpm::GcConfig::default(),
        })
        .unwrap(),
    )
}

#[test]
fn committed_log_entries_survive_a_dpm_power_failure() {
    let dpm = tracked_dpm();
    let mut writer = LogWriter::new(Arc::clone(&dpm), 0, Nic::default());
    for i in 0..200u64 {
        writer.append_put(&key_for(i, 8), &[(i % 251) as u8; 64]);
        if writer.should_flush() {
            writer.flush().unwrap();
        }
    }
    writer.flush().unwrap();
    dpm.wait_until_merged(0);

    // Power failure: unpersisted cache lines are destroyed.
    dpm.pool().simulate_crash();
    let report = dpm.recover();
    assert_eq!(
        report.torn_entries, 0,
        "all flushed entries carried commit markers"
    );
    for i in 0..200u64 {
        assert_eq!(
            dpm.local_read(&key_for(i, 8)),
            Some(vec![(i % 251) as u8; 64]),
            "key {i} lost after power failure"
        );
    }
}

#[test]
fn torn_writes_are_discarded_by_recovery() {
    let dpm = tracked_dpm();
    let mut writer = LogWriter::new(Arc::clone(&dpm), 0, Nic::default());
    writer.append_put(b"durable", &[1u8; 32]);
    writer.flush().unwrap();
    dpm.wait_until_merged(0);

    // Simulate a crash in the middle of a log append: write entry bytes
    // directly without a valid seal, bypassing the writer.
    let seg = dpm.allocate_segment(1).unwrap();
    let mut torn = Vec::new();
    dinomo::dpm::entry::encode_entry(
        &mut torn,
        b"torn-key",
        &[2u8; 32],
        dinomo::dpm::LogOp::Put,
        1,
    );
    let len = torn.len();
    torn[len - 1] ^= 0xFF; // corrupt the seal
    dpm.pool().write_bytes(seg.base, &torn);
    seg.record_append(torn.len() as u64, 1);
    seg.seal();

    let report = dpm.recover();
    assert!(report.torn_entries >= 1, "the torn entry must be detected");
    assert_eq!(dpm.local_read(b"durable"), Some(vec![1u8; 32]));
    assert_eq!(
        dpm.local_read(b"torn-key"),
        None,
        "a torn write must not become visible"
    );
}

#[test]
fn kn_failure_preserves_flushed_writes_and_policy_metadata() {
    let kvs = Kvs::new(KvsConfig {
        initial_kns: 3,
        ..KvsConfig::small_for_tests()
    })
    .unwrap();
    let client = kvs.client();
    for i in 0..400u64 {
        client.insert(&key_for(i, 8), &[3u8; 48]).unwrap();
    }
    kvs.flush_all().unwrap();
    kvs.replicate_key(&key_for(1, 8), 2).unwrap();

    let victim = kvs.kn_ids()[1];
    kvs.fail_kn(victim).unwrap();

    // Every flushed write is still readable through the surviving nodes.
    for i in 0..400u64 {
        assert_eq!(
            client.lookup(&key_for(i, 8)).unwrap(),
            Some(vec![3u8; 48]),
            "key {i}"
        );
    }
    // The policy metadata persisted in DPM reflects the new membership, so a
    // restarted routing node could rebuild its soft state.
    let recovered = kvs
        .recover_policy_metadata()
        .expect("policy metadata must be in DPM");
    assert_eq!(recovered.num_kns(), 2);
    assert!(!recovered.kns().contains(&victim));
}

#[test]
fn garbage_collection_never_reclaims_live_data() {
    let kvs = Kvs::new(KvsConfig::small_for_tests()).unwrap();
    let client = kvs.client();
    // Overwrite a small key set many times to generate dead segments.
    for round in 0..30u64 {
        for i in 0..40u64 {
            client
                .update(&key_for(i, 8), &[(round % 251) as u8; 128])
                .unwrap();
        }
    }
    kvs.quiesce().unwrap();
    let freed = kvs.dpm().run_gc();
    // Whatever was freed, the live values are intact.
    for i in 0..40u64 {
        assert_eq!(
            client.lookup(&key_for(i, 8)).unwrap(),
            Some(vec![29u8; 128]),
            "key {i}"
        );
    }
    let stats = kvs.dpm().stats();
    assert!(stats.segments_freed as usize >= freed.min(1) - 1 || freed == 0);
}
